"""Unit tests for the profiling layer (contention, collector, datasets,
sampling strategies, adaptive profiling)."""

import pytest

from repro.errors import ConfigurationError, ProfilingError
from repro.nf.catalog import make_nf
from repro.nic.counters import PerfCounters
from repro.profiling.adaptive import AdaptiveProfiler
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import (
    ContentionLevel,
    random_contention,
)
from repro.profiling.dataset import ProfileDataset, ProfileSample
from repro.profiling.sampling import full_profile, random_profile
from repro.traffic.profile import TrafficProfile

TRAFFIC = TrafficProfile()


class TestContentionLevel:
    def test_idle_default(self):
        assert ContentionLevel().is_idle
        assert not ContentionLevel(mem_car=10.0).is_idle

    def test_benches_materialise_requested_pressure(self):
        level = ContentionLevel(mem_car=100.0, regex_rate=1.0)
        benches = level.benches(6)
        names = {b.name for b in benches}
        assert names == {"mem-bench", "regex-bench"}

    def test_idle_level_has_no_benches(self):
        assert ContentionLevel().benches(6) == []

    def test_core_budget_respected(self):
        level = ContentionLevel(mem_car=100.0, regex_rate=1.0, compression_rate=1.0)
        benches = level.benches(4)
        assert sum(b.cores for b in benches) <= 4

    def test_match_rate_property(self):
        level = ContentionLevel(
            regex_rate=2.0, regex_mtbr=500.0, regex_payload_bytes=1000.0
        )
        assert level.regex_match_rate == pytest.approx(1.0)

    def test_with_helpers(self):
        level = ContentionLevel().with_memory(50.0).with_regex(1.0, mtbr=700.0)
        assert level.mem_car == 50.0
        assert level.regex_mtbr == 700.0

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            ContentionLevel(mem_car=-1.0)

    def test_random_contention_respects_flags(self):
        level = random_contention(seed=0, memory=True, regex=False)
        assert level.mem_car > 0.0 and level.regex_rate == 0.0
        level = random_contention(seed=0, memory=False, regex=True)
        assert level.mem_car == 0.0 and level.regex_rate >= 0.0

    def test_contention_levels_hashable(self):
        assert ContentionLevel(mem_car=1.0) == ContentionLevel(mem_car=1.0)
        assert hash(ContentionLevel()) == hash(ContentionLevel())


class TestCollector(object):
    def test_profile_one_counts_new_configs(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        nf = make_nf("acl")
        collector.profile_one(nf, ContentionLevel(mem_car=50.0), TRAFFIC)
        assert collector.profile_count == 1

    def test_repeat_config_served_from_cache(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        nf = make_nf("acl")
        level = ContentionLevel(mem_car=50.0)
        first = collector.profile_one(nf, level, TRAFFIC)
        second = collector.profile_one(nf, level, TRAFFIC)
        assert collector.profile_count == 1
        assert first.throughput_mpps == second.throughput_mpps

    def test_solo_sample_equals_solo_run(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        nf = make_nf("acl")
        sample = collector.profile_one(nf, ContentionLevel(), TRAFFIC)
        assert sample.throughput_mpps == pytest.approx(
            collector.solo(nf, TRAFFIC).throughput_mpps
        )

    def test_bench_counters_idle_is_zero(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        assert collector.bench_counters(ContentionLevel()) == PerfCounters.zero()

    def test_bench_counters_scale_with_car(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        low = collector.bench_counters(ContentionLevel(mem_car=50.0))
        high = collector.bench_counters(ContentionLevel(mem_car=200.0))
        assert high.cache_access_rate > low.cache_access_rate

    def test_co_run_with_rejects_core_overflow(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        nf = make_nf("acl")
        competitors = [(make_nf("nat"), TRAFFIC)] * 4
        with pytest.raises(ProfilingError):
            collector.co_run_with(nf, TRAFFIC, competitors)

    def test_co_run_with_duplicate_competitors_allowed(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        result = collector.co_run_with(
            make_nf("acl"), TRAFFIC, [(make_nf("nat"), TRAFFIC)] * 2
        )
        assert result.throughput_mpps > 0


class TestBenchSetConsistency:
    """Counter features must describe the bench set the target co-ran
    against (regression: bench_counters hard-coded a two-core target
    while profile_one sized benches with the target's actual cores)."""

    # A core-limited mem-bench: its achieved pressure (and therefore its
    # counters) depends on how many cores the budget leaves it.
    LEVEL = ContentionLevel(mem_car=400.0, mem_wss_mb=40.0, regex_rate=1.0)

    def test_bench_counters_depend_on_core_budget(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        narrow = collector.bench_counters(self.LEVEL, available_cores=3)
        wide = collector.bench_counters(self.LEVEL, available_cores=6)
        assert narrow != wide

    def test_default_budget_assumes_two_core_target(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        default = collector.bench_counters(self.LEVEL)
        explicit = collector.bench_counters(
            self.LEVEL, available_cores=noisy_nic.spec.num_cores - 2
        )
        assert default == explicit

    def test_profile_one_features_match_measured_bench_set(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        wide_target = make_nf("acl").with_cores(4)
        sample = collector.profile_one(wide_target, self.LEVEL, TRAFFIC)
        matching = collector.bench_counters(
            self.LEVEL, available_cores=noisy_nic.spec.num_cores - 4
        )
        assert sample.competitor_counters == matching
        # ...and differs from the old hard-coded two-core assumption.
        assert sample.competitor_counters != collector.bench_counters(self.LEVEL)

    def test_two_core_target_unchanged(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        sample = collector.profile_one(make_nf("acl"), self.LEVEL, TRAFFIC)
        assert sample.competitor_counters == collector.bench_counters(self.LEVEL)


class TestDataset:
    def _sample(self, throughput=1.0, flows=16_000):
        return ProfileSample(
            nf_name="acl",
            traffic=TrafficProfile(flows, 1500, 600.0),
            contention=ContentionLevel(mem_car=10.0),
            competitor_counters=PerfCounters(l2crd=5.0),
            throughput_mpps=throughput,
            solo_throughput_mpps=2.0,
        )

    def test_features_with_traffic(self):
        dataset = ProfileDataset("acl")
        dataset.add(self._sample())
        features = dataset.features(include_traffic=True)
        assert features.shape == (1, 11)

    def test_features_without_traffic(self):
        dataset = ProfileDataset("acl")
        dataset.add(self._sample())
        assert dataset.features(include_traffic=False).shape == (1, 8)

    def test_feature_names_match_width(self):
        assert len(ProfileDataset.feature_names(True)) == 11
        assert len(ProfileDataset.feature_names(False)) == 8

    def test_targets(self):
        dataset = ProfileDataset("acl")
        dataset.add(self._sample(throughput=1.5))
        assert dataset.targets()[0] == 1.5

    def test_drop_ratio(self):
        assert self._sample(throughput=1.0).drop_ratio == pytest.approx(0.5)

    def test_wrong_nf_rejected(self):
        dataset = ProfileDataset("nat")
        with pytest.raises(ProfilingError):
            dataset.add(self._sample())

    def test_empty_features_rejected(self):
        with pytest.raises(ProfilingError):
            ProfileDataset("acl").features()

    def test_split_by(self):
        dataset = ProfileDataset("acl")
        dataset.add(self._sample(flows=1_000))
        dataset.add(self._sample(flows=100_000))
        small, large = dataset.split_by(lambda s: s.traffic.flow_count < 50_000)
        assert len(small) == 1 and len(large) == 1

    def test_merged_with(self):
        a, b = ProfileDataset("acl"), ProfileDataset("acl")
        a.add(self._sample())
        b.add(self._sample())
        assert len(a.merged_with(b)) == 2


class TestSamplingStrategies:
    def test_random_profile_respects_quota(self, collector):
        dataset = random_profile(collector, make_nf("acl"), quota=15, seed=0)
        assert len(dataset) == 15

    def test_random_profile_includes_solo_points(self, collector):
        dataset = random_profile(collector, make_nf("acl"), quota=20, seed=0)
        assert any(s.contention.is_idle for s in dataset.samples)

    def test_full_profile_grid_size(self, collector):
        dataset = full_profile(
            collector,
            make_nf("acl"),
            attributes=["flow_count"],
            grid_points={"flow_count": 3},
            contention_levels_per_point=2,
            seed=0,
        )
        # 3 grid points x (2 contended + 1 solo).
        assert len(dataset) == 9

    def test_random_profile_rejects_zero_quota(self, collector):
        with pytest.raises(ProfilingError):
            random_profile(collector, make_nf("acl"), quota=0)


class TestAdaptiveProfiler:
    def test_quota_respected(self, collector):
        report = AdaptiveProfiler(collector, quota=60, seed=0).profile(
            make_nf("flowstats")
        )
        assert report.samples_used <= 60
        assert len(report.dataset) == report.samples_used

    def test_prunes_packet_size_for_flowstats(self, collector):
        report = AdaptiveProfiler(collector, quota=80, seed=0).profile(
            make_nf("flowstats")
        )
        assert "packet_size" in report.pruned_attributes
        assert "flow_count" in report.kept_attributes

    def test_insensitive_nf_prunes_everything(self, collector):
        report = AdaptiveProfiler(collector, quota=60, seed=0).profile(
            make_nf("acl")
        )
        assert report.kept_attributes == []
        assert report.samples_used == 60

    def test_splits_recorded_for_sensitive_nf(self, collector):
        report = AdaptiveProfiler(collector, quota=120, seed=0).profile(
            make_nf("flowstats")
        )
        assert report.regions_split > 0

    def test_rejects_bad_parameters(self, collector):
        with pytest.raises(ProfilingError):
            AdaptiveProfiler(collector, quota=0)
        with pytest.raises(ProfilingError):
            AdaptiveProfiler(collector, epsilon_prune=0.0)
        with pytest.raises(ProfilingError):
            AdaptiveProfiler(collector, samples_per_region=0)

    def test_dataset_covers_contended_and_solo(self, collector):
        report = AdaptiveProfiler(collector, quota=100, seed=1).profile(
            make_nf("flowstats")
        )
        kinds = {s.contention.is_idle for s in report.dataset.samples}
        assert kinds == {True, False}


class TestBatchCollector:
    """``profile_many`` / ``co_run_many`` == their looped primitives."""

    @staticmethod
    def _requests(count=14):
        import numpy as np

        rng = np.random.default_rng(31)
        requests = []
        for index in range(count):
            nf = make_nf(str(rng.choice(["flowstats", "nids", "flowmonitor"])))
            if index % 6 == 0:
                level = ContentionLevel()
            else:
                level = random_contention(
                    seed=rng, memory=True, regex=index % 2 == 0
                )
            traffic = TrafficProfile(mtbr=float(rng.uniform(0.0, 1100.0)))
            requests.append((nf, level, traffic))
        return requests

    def test_profile_many_matches_looped_profile_one(self, noisy_nic):
        requests = self._requests()
        looped = ProfilingCollector(noisy_nic)
        loop_samples = [looped.profile_one(*request) for request in requests]
        batched = ProfilingCollector(noisy_nic)
        batch_samples = batched.profile_many(requests)
        assert batch_samples == loop_samples
        assert batched.profile_count == looped.profile_count

    def test_profile_many_duplicates_share_one_quota_charge(self, noisy_nic):
        requests = self._requests(6)
        collector = ProfilingCollector(noisy_nic)
        samples = collector.profile_many(requests + requests)
        assert collector.profile_count == len(requests)
        assert samples[: len(requests)] == samples[len(requests) :]

    def test_profile_many_populates_the_same_caches(self, noisy_nic):
        requests = self._requests()
        looped = ProfilingCollector(noisy_nic)
        for request in requests:
            looped.profile_one(*request)
        batched = ProfilingCollector(noisy_nic)
        batched.profile_many(requests)
        assert batched._solo_cache == looped._solo_cache
        assert batched._bench_counter_cache == looped._bench_counter_cache
        assert batched._sample_cache == looped._sample_cache

    def test_profile_many_then_profile_one_is_cached(self, noisy_nic):
        requests = self._requests(5)
        collector = ProfilingCollector(noisy_nic)
        samples = collector.profile_many(requests)
        count = collector.profile_count
        for request, sample in zip(requests, samples):
            assert collector.profile_one(*request) == sample
        assert collector.profile_count == count

    def test_co_run_many_matches_looped_co_run_with(self, noisy_nic):
        import numpy as np

        rng = np.random.default_rng(37)
        requests = []
        for _ in range(8):
            competitors = [
                (make_nf(str(rng.choice(["acl", "nat", "nids"]))), TRAFFIC)
                for _ in range(int(rng.integers(1, 4)))
            ]
            requests.append((make_nf("flowstats"), TRAFFIC, competitors))
        collector = ProfilingCollector(noisy_nic)
        looped = [collector.co_run_with(*request) for request in requests]
        assert collector.co_run_many(requests) == looped

    def test_co_run_many_error_slots(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        bad = (make_nf("acl"), TRAFFIC, [(make_nf("nat"), TRAFFIC)] * 4)
        good = (make_nf("acl"), TRAFFIC, [(make_nf("nat"), TRAFFIC)])
        results = collector.co_run_many([good, bad], on_error="return")
        assert results[0].throughput_mpps > 0
        assert isinstance(results[1], ProfilingError)
        with pytest.raises(ProfilingError):
            collector.co_run_many([good, bad])


class TestFeatureMatrixAssembly:
    """PR 3: block-assembled features() == the per-sample concatenation."""

    @staticmethod
    def _dataset(collector, include=8):
        import numpy as np

        rng = np.random.default_rng(5)
        dataset = ProfileDataset("flowstats")
        nf = make_nf("flowstats")
        for index in range(include):
            level = random_contention(seed=rng, memory=True)
            traffic = TrafficProfile(mtbr=float(rng.uniform(0.0, 1100.0)))
            dataset.add(collector.profile_one(nf, level, traffic))
        return dataset

    @pytest.mark.parametrize("include_traffic", [True, False])
    def test_matches_concatenation_layout(self, collector, include_traffic):
        import numpy as np

        dataset = self._dataset(collector)
        reference = np.array(
            [
                np.concatenate(
                    [
                        sample.competitor_counters.as_vector(),
                        [float(sample.n_competitors)],
                    ]
                    + ([sample.traffic.as_vector()] if include_traffic else [])
                )
                for sample in dataset.samples
            ]
        )
        assembled = dataset.features(include_traffic=include_traffic)
        assert assembled.dtype == reference.dtype
        assert np.array_equal(assembled, reference)
        assert assembled.shape[1] == len(
            ProfileDataset.feature_names(include_traffic)
        )
