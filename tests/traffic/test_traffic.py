"""Unit tests for the traffic substrate (profiles, flows, payloads)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.flows import FlowGenerator
from repro.traffic.payload import PayloadGenerator, measure_mtbr
from repro.traffic.pktgen import PacketGenerator
from repro.traffic.profile import (
    DEFAULT_TRAFFIC,
    TRAFFIC_ATTRIBUTES,
    AttributeRange,
    TrafficProfile,
    random_profiles,
)
from repro.traffic.rules import RegexRule, RuleSet, l7_filter_ruleset


class TestTrafficProfile:
    def test_default_is_paper_vector(self):
        assert DEFAULT_TRAFFIC.flow_count == 16_000
        assert DEFAULT_TRAFFIC.packet_size == 1500
        assert DEFAULT_TRAFFIC.mtbr == 600.0

    def test_payload_excludes_headers(self):
        assert TrafficProfile(100, 1500, 0.0).payload_bytes == 1446

    def test_matches_per_packet(self):
        profile = TrafficProfile(100, 1054, 1000.0)
        assert profile.matches_per_packet == pytest.approx(1.0)

    def test_vector_order_matches_attributes(self):
        vector = DEFAULT_TRAFFIC.as_vector()
        for i, name in enumerate(TRAFFIC_ATTRIBUTES):
            assert vector[i] == DEFAULT_TRAFFIC.attribute(name)

    def test_with_attribute_round_trip(self):
        changed = DEFAULT_TRAFFIC.with_attribute("flow_count", 5_000)
        assert changed.flow_count == 5_000
        assert changed.packet_size == DEFAULT_TRAFFIC.packet_size

    def test_with_unknown_attribute_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_TRAFFIC.with_attribute("jumbo", 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flow_count": 0},
            {"packet_size": 54},
            {"packet_size": 9500},
            {"mtbr": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrafficProfile(**{"flow_count": 100, "packet_size": 100, "mtbr": 0.0, **kwargs})

    def test_profiles_hashable_and_equal(self):
        assert TrafficProfile(1_000, 100, 1.0) == TrafficProfile(1_000, 100, 1.0)
        assert hash(DEFAULT_TRAFFIC) == hash(TrafficProfile())


class TestAttributeRange:
    def test_midpoint(self):
        assert AttributeRange("mtbr", 0.0, 10.0).midpoint == 5.0

    def test_grid(self):
        grid = AttributeRange("mtbr", 0.0, 10.0).grid(3)
        assert np.allclose(grid, [0.0, 5.0, 10.0])

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            AttributeRange("mtbr", 10.0, 0.0)

    def test_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            AttributeRange("bandwidth", 0.0, 1.0)


class TestRandomProfiles:
    def test_count_and_determinism(self):
        a = random_profiles(10, seed=3)
        b = random_profiles(10, seed=3)
        assert len(a) == 10 and a == b

    def test_vary_restricts_dimensions(self):
        profiles = random_profiles(10, seed=3, vary=["flow_count"])
        assert all(p.packet_size == DEFAULT_TRAFFIC.packet_size for p in profiles)
        assert len({p.flow_count for p in profiles}) > 1

    def test_values_within_ranges(self):
        for profile in random_profiles(30, seed=4):
            assert 1_000 <= profile.flow_count <= 500_000
            assert 64 <= profile.packet_size <= 1500
            assert 0.0 <= profile.mtbr <= 1100.0


class TestRuleSet:
    def test_l7_ruleset_well_formed(self):
        ruleset = l7_filter_ruleset()
        assert len(ruleset) == 10
        assert ruleset.average_complexity() > 0

    def test_scan_counts_occurrences(self):
        ruleset = RuleSet([RegexRule("r", b"ABC")])
        assert ruleset.total_matches(b"xxABCyyABCzz") == 2

    def test_scan_no_overlap_double_count(self):
        ruleset = RuleSet([RegexRule("r", b"AA")])
        assert ruleset.total_matches(b"AAAA") == 2  # non-overlapping find

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ConfigurationError):
            RuleSet([RegexRule("r", b"A"), RegexRule("r", b"B")])

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ConfigurationError):
            RuleSet([RegexRule("a", b"X"), RegexRule("b", b"X")])

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ConfigurationError):
            RuleSet([])


class TestPayloadGenerator:
    def test_payload_has_requested_size(self):
        generator = PayloadGenerator(l7_filter_ruleset(), seed=0)
        assert len(generator.generate(1446, 600.0)) == 1446

    def test_zero_mtbr_payload_has_no_matches(self):
        ruleset = l7_filter_ruleset()
        generator = PayloadGenerator(ruleset, seed=0)
        payload = generator.generate(1446, 0.0)
        assert ruleset.total_matches(payload) == 0

    def test_stream_converges_to_target_mtbr(self):
        ruleset = l7_filter_ruleset()
        generator = PayloadGenerator(ruleset, seed=1)
        payloads = generator.stream(1446, 800.0, 300)
        measured = measure_mtbr(payloads, ruleset)
        assert measured == pytest.approx(800.0, rel=0.15)

    def test_higher_mtbr_more_matches(self):
        ruleset = l7_filter_ruleset()
        generator = PayloadGenerator(ruleset, seed=2)
        low = measure_mtbr(generator.stream(1446, 100.0, 100), ruleset)
        high = measure_mtbr(generator.stream(1446, 1000.0, 100), ruleset)
        assert high > low

    def test_rejects_empty_payload_request(self):
        generator = PayloadGenerator(l7_filter_ruleset(), seed=0)
        with pytest.raises(ConfigurationError):
            generator.generate(0, 100.0)

    def test_measure_mtbr_requires_payloads(self):
        with pytest.raises(ConfigurationError):
            measure_mtbr([], l7_filter_ruleset())


class TestFlowGenerator:
    def test_generates_unique_flows(self):
        flows = FlowGenerator(seed=0).generate(500)
        assert len({f.key for f in flows}) == 500

    def test_flow_sizes_within_bounds(self):
        flows = FlowGenerator(min_packets=10, max_packets=20, seed=0).generate(100)
        assert all(10 <= f.packets <= 20 for f in flows)

    def test_ip_addresses_in_private_ranges(self):
        flow = FlowGenerator(seed=0).generate(1)[0]
        assert flow.src_ip_str().startswith("10.")
        assert flow.dst_ip_str().startswith("192.168.")

    def test_schedule_length_and_indices(self):
        generator = FlowGenerator(seed=0)
        flows = generator.generate(10)
        schedule = generator.schedule(flows, 100)
        assert len(schedule) == 100
        assert schedule.min() >= 0 and schedule.max() < 10

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            FlowGenerator(min_packets=5, max_packets=2)


class TestPacketGenerator:
    def test_packets_conform_to_profile(self):
        profile = TrafficProfile(50, 200, 600.0)
        generator = PacketGenerator(profile, seed=0)
        packets = generator.packets(20)
        assert all(p.size_bytes == 200 for p in packets)
        assert generator.distinct_flows_in(packets) <= 50

    def test_flow_reuse_across_packets(self):
        profile = TrafficProfile(5, 200, 0.0)
        generator = PacketGenerator(profile, seed=0)
        packets = generator.packets(100)
        assert generator.distinct_flows_in(packets) == 5

    def test_payloads_respect_mtbr(self):
        profile = TrafficProfile(10, 1500, 900.0)
        generator = PacketGenerator(profile, seed=1)
        packets = generator.packets(200)
        measured = measure_mtbr([p.payload for p in packets], generator.ruleset)
        assert measured == pytest.approx(900.0, rel=0.2)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            PacketGenerator(DEFAULT_TRAFFIC, seed=0).packets(0)
