"""Tests for the seeded dynamic traffic traces."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.traces import TRACE_KINDS, make_trace, random_trace
from repro.traffic.profile import TrafficProfile

BASE = TrafficProfile(50_000, 1000, 500.0)


class TestTraceDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_same_trajectory(self, kind):
        a = make_trace(kind, BASE, seed=5)
        b = make_trace(kind, BASE, seed=5)
        assert [a.profile_at(t) for t in range(12)] == [
            b.profile_at(t) for t in range(12)
        ]

    def test_pure_in_epoch_order(self):
        trace = make_trace("random_walk", BASE, seed=9)
        forward = [trace.profile_at(t) for t in range(8)]
        backward = [trace.profile_at(t) for t in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = make_trace("random_walk", BASE, seed=1)
        b = make_trace("random_walk", BASE, seed=2)
        assert any(a.profile_at(t) != b.profile_at(t) for t in range(1, 10))


class TestTraceShapes:
    def test_static_returns_base(self):
        trace = make_trace("static", BASE, seed=3)
        assert all(trace.profile_at(t) == BASE for t in range(5))

    def test_diurnal_swings_and_returns(self):
        trace = make_trace("diurnal", BASE, seed=3, period=8)
        values = [trace.profile_at(t).flow_count for t in range(8)]
        assert max(values) > BASE.flow_count
        assert min(values) < BASE.flow_count
        # One full period later the profile repeats exactly.
        assert trace.profile_at(2) == trace.profile_at(10)

    def test_flash_crowd_surges_then_decays(self):
        trace = make_trace(
            "flash_crowd", BASE, seed=3, surge_factor=4.0, decay=0.5
        )
        flows = [trace.profile_at(t).flow_count for t in range(40)]
        assert max(flows) > 2 * BASE.flow_count
        assert flows[0] == BASE.flow_count  # onset is >= 1
        assert abs(flows[-1] - BASE.flow_count) <= 0.05 * BASE.flow_count

    def test_burst_epochs_are_rare_and_scaled(self):
        trace = make_trace(
            "burst", BASE, seed=3, burst_probability=0.25, surge_factor=3.0
        )
        flows = [trace.profile_at(t).flow_count for t in range(40)]
        bursts = [f for f in flows if f > BASE.flow_count]
        assert 0 < len(bursts) < len(flows)

    def test_attributes_clamped(self):
        huge = TrafficProfile(400_000, 1500, 1000.0)
        trace = make_trace(
            "flash_crowd", huge, seed=3, surge_factor=6.0
        )
        for t in range(30):
            profile = trace.profile_at(t)
            assert 1 <= profile.flow_count <= 500_000
            assert 0.0 <= profile.mtbr <= 1100.0


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("sawtooth", BASE, seed=1)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("static", BASE, seed=1).profile_at(-1)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("diurnal", BASE, seed=1, amplitude=1.5)
        with pytest.raises(ConfigurationError):
            make_trace("flash_crowd", BASE, seed=1, decay=1.0)


class TestRandomTrace:
    def test_deterministic(self):
        assert random_trace(7) == random_trace(7)

    def test_kind_restriction(self):
        for seed in range(10):
            trace = random_trace(seed, kinds=("diurnal", "burst"))
            assert trace.kind in ("diurnal", "burst")
