"""Tests for the seeded dynamic traffic traces."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.traces import TRACE_KINDS, make_trace, random_trace
from repro.traffic.profile import TrafficProfile

BASE = TrafficProfile(50_000, 1000, 500.0)


class TestTraceDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_same_trajectory(self, kind):
        a = make_trace(kind, BASE, seed=5)
        b = make_trace(kind, BASE, seed=5)
        assert [a.profile_at(t) for t in range(12)] == [
            b.profile_at(t) for t in range(12)
        ]

    def test_pure_in_epoch_order(self):
        trace = make_trace("random_walk", BASE, seed=9)
        forward = [trace.profile_at(t) for t in range(8)]
        backward = [trace.profile_at(t) for t in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = make_trace("random_walk", BASE, seed=1)
        b = make_trace("random_walk", BASE, seed=2)
        assert any(a.profile_at(t) != b.profile_at(t) for t in range(1, 10))


class TestTraceShapes:
    def test_static_returns_base(self):
        trace = make_trace("static", BASE, seed=3)
        assert all(trace.profile_at(t) == BASE for t in range(5))

    def test_diurnal_swings_and_returns(self):
        trace = make_trace("diurnal", BASE, seed=3, period=8)
        values = [trace.profile_at(t).flow_count for t in range(8)]
        assert max(values) > BASE.flow_count
        assert min(values) < BASE.flow_count
        # One full period later the profile repeats exactly.
        assert trace.profile_at(2) == trace.profile_at(10)

    def test_flash_crowd_surges_then_decays(self):
        trace = make_trace(
            "flash_crowd", BASE, seed=3, surge_factor=4.0, decay=0.5
        )
        flows = [trace.profile_at(t).flow_count for t in range(40)]
        assert max(flows) > 2 * BASE.flow_count
        assert flows[0] == BASE.flow_count  # onset is >= 1
        assert abs(flows[-1] - BASE.flow_count) <= 0.05 * BASE.flow_count

    def test_burst_epochs_are_rare_and_scaled(self):
        trace = make_trace(
            "burst", BASE, seed=3, burst_probability=0.25, surge_factor=3.0
        )
        flows = [trace.profile_at(t).flow_count for t in range(40)]
        bursts = [f for f in flows if f > BASE.flow_count]
        assert 0 < len(bursts) < len(flows)

    def test_attributes_clamped(self):
        huge = TrafficProfile(400_000, 1500, 1000.0)
        trace = make_trace(
            "flash_crowd", huge, seed=3, surge_factor=6.0
        )
        for t in range(30):
            profile = trace.profile_at(t)
            assert 1 <= profile.flow_count <= 500_000
            assert 0.0 <= profile.mtbr <= 1100.0


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("sawtooth", BASE, seed=1)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("static", BASE, seed=1).profile_at(-1)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("diurnal", BASE, seed=1, amplitude=1.5)
        with pytest.raises(ConfigurationError):
            make_trace("flash_crowd", BASE, seed=1, decay=1.0)


class TestRandomTrace:
    def test_deterministic(self):
        assert random_trace(7) == random_trace(7)

    def test_kind_restriction(self):
        for seed in range(10):
            trace = random_trace(seed, kinds=("diurnal", "burst"))
            assert trace.kind in ("diurnal", "burst")


# ----------------------------------------------------------------------
# Property tests (hypothesis): clamping invariants, exact flash peaks
# and the int/float grid equality the event engine's continuous clock
# relies on.

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.fleet.traces import _MAX_FLOWS, _MAX_MTBR, _clamped  # noqa: E402

_finite = st.floats(allow_nan=False, allow_infinity=False)


class TestClampedProperties:
    @given(
        flow_mult=_finite.filter(lambda x: abs(x) < 1e12),
        mtbr_mult=_finite.filter(lambda x: abs(x) < 1e12),
    )
    @settings(max_examples=200, deadline=None)
    def test_output_always_admissible(self, flow_mult, mtbr_mult):
        profile = _clamped(BASE, flow_mult, mtbr_mult)
        assert 1 <= profile.flow_count <= _MAX_FLOWS
        assert 0.0 <= profile.mtbr <= _MAX_MTBR

    @given(mult=st.floats(min_value=1e6, max_value=1e12))
    @settings(max_examples=50, deadline=None)
    def test_huge_multipliers_saturate(self, mult):
        profile = _clamped(BASE, mult, mult)
        assert profile.flow_count == _MAX_FLOWS
        assert profile.mtbr == _MAX_MTBR

    @given(mult=st.floats(min_value=-1e12, max_value=0.0))
    @settings(max_examples=50, deadline=None)
    def test_nonpositive_multipliers_floor(self, mult):
        profile = _clamped(BASE, mult, mult)
        assert profile.flow_count == 1
        assert profile.mtbr == 0.0


class TestProfileAtProperties:
    @given(
        kind=st.sampled_from(TRACE_KINDS),
        seed=st.integers(min_value=0, max_value=2**31),
        t=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        amplitude=st.floats(min_value=0.0, max_value=0.99),
        surge=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=150, deadline=None)
    def test_profiles_always_admissible(self, kind, seed, t, amplitude, surge):
        trace = make_trace(
            kind, BASE, seed=seed, amplitude=amplitude, surge_factor=surge
        )
        profile = trace.profile_at(t)
        assert 1 <= profile.flow_count <= _MAX_FLOWS
        assert 0.0 <= profile.mtbr <= _MAX_MTBR

    @given(
        kind=st.sampled_from(TRACE_KINDS),
        seed=st.integers(min_value=0, max_value=2**31),
        epoch=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_int_and_float_epochs_bit_identical(self, kind, seed, epoch):
        """profile_at(k) == profile_at(float(k)) to the last bit — the
        epoch-equivalence contract of the continuous clock."""
        trace = make_trace(kind, BASE, seed=seed)
        assert trace.profile_at(epoch) == trace.profile_at(float(epoch))


class TestFlashCrowdPeak:
    @given(
        surge=st.floats(min_value=1.0, max_value=9.0),
        decay=st.floats(min_value=0.01, max_value=0.99),
        onset=st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_peak_at_onset_is_exactly_the_surge_factor(
        self, surge, decay, onset
    ):
        """At the onset instant decay**0 == 1, so the multiplier is the
        surge factor itself, whatever the decay."""
        trace = make_trace(
            "flash_crowd",
            BASE,
            seed=5,
            surge_factor=surge,
            decay=decay,
            onset_time=onset,
        )
        assert trace.profile_at(onset) == _clamped(BASE, surge, 1.0)

    @given(
        surge=st.floats(min_value=1.001, max_value=9.0),
        onset=st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_just_before_onset_is_base(self, surge, onset):
        trace = make_trace(
            "flash_crowd", BASE, seed=5, surge_factor=surge, onset_time=onset
        )
        before = max(0.0, onset - 1e-9)
        if before < onset:
            assert trace.profile_at(before) == BASE
