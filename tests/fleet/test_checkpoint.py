"""Tests for crash-surviving checkpoints and atomic report writes.

The headline contract: a run resumed from a mid-run snapshot finishes
**byte-identical** to the uninterrupted run — for both engines, with
faults injected, across execution runtimes. Plus the safety rails:
snapshots are written atomically (no truncated files, ever), and a
snapshot refuses to resume into a different configuration.
"""

import os
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    CHECKPOINT_VERSION,
    Checkpointer,
    FleetConfig,
    atomic_write_bytes,
    atomic_write_text,
    build_model,
    load_checkpoint,
    simulate,
)
from repro.fleet import __main__ as fleet_cli

BASE = dict(
    policy="yala", epochs=10, quota=60, initial_services=5,
    pods=2, pod_outage_rate=0.9, nic_fail_rate=0.2,
    mean_time_to_fail=3.0,
)


@pytest.fixture(scope="module")
def model():
    config = FleetConfig(**BASE)
    return build_model(
        config.policy, config.nf_pool, config.seed, config.quota, 1
    )


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "first")
        assert path.read_text() == "first"
        atomic_write_text(str(path), "second")
        assert path.read_text() == "second"

    def test_no_temp_droppings(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(str(path), b"payload")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_failed_write_leaves_previous_intact(self, tmp_path,
                                                 monkeypatch):
        path = tmp_path / "out.bin"
        atomic_write_bytes(str(path), b"good")

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_bytes(str(path), b"bad")
        monkeypatch.undo()
        assert path.read_bytes() == b"good"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]


class TestCheckpointer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Checkpointer("snap.pkl", 0, {})
        with pytest.raises(ConfigurationError):
            Checkpointer("", 1, {})

    def test_save_cadence(self, tmp_path):
        ckpt = Checkpointer(str(tmp_path / "s.pkl"), 3, {"seed": 1})
        saved = [step for step in range(0, 10)
                 if ckpt.maybe_save(step, {"step": step})]
        assert saved == [3, 6, 9]
        assert ckpt.saves == 3
        step, state = load_checkpoint(str(tmp_path / "s.pkl"),
                                      {"seed": 1})
        assert step == 9 and state == {"step": 9}

    def test_load_missing(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "absent.pkl"))

    def test_load_corrupt(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"\x80\x05 this is not a pickle")
        with pytest.raises(ConfigurationError, match="corrupt"):
            load_checkpoint(str(path))

    def test_load_not_a_snapshot(self, tmp_path):
        path = tmp_path / "odd.pkl"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ConfigurationError, match="not a snapshot"):
            load_checkpoint(str(path))

    def test_load_wrong_version(self, tmp_path):
        path = tmp_path / "old.pkl"
        path.write_bytes(pickle.dumps({
            "version": CHECKPOINT_VERSION + 1, "fingerprint": {},
            "step": 1, "state": {},
        }))
        with pytest.raises(ConfigurationError, match="version"):
            load_checkpoint(str(path))

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "s.pkl"
        Checkpointer(str(path), 1, {"seed": 1}).save(1, {})
        with pytest.raises(ConfigurationError, match="different"):
            load_checkpoint(str(path), {"seed": 2})
        # And without a fingerprint, loading is unconditional.
        assert load_checkpoint(str(path))[0] == 1


class TestResumeByteIdentity:
    @pytest.mark.parametrize("engine,extra", [
        ("epoch", {}),
        ("event", {"quantize_arrivals": True}),
    ])
    def test_resumed_run_matches_uninterrupted(self, tmp_path, model,
                                               engine, extra):
        snap = str(tmp_path / f"{engine}.pkl")
        base = dict(BASE, engine=engine, **extra)
        uninterrupted = simulate(FleetConfig(**base), model=model)
        # The checkpointing run snapshots at epoch 4 (and 8); resuming
        # from the *mid-run* step-4 snapshot replays 4..10.
        mid = simulate(
            FleetConfig(checkpoint_path=snap, checkpoint_every=4, **base),
            model=model,
        )
        assert mid.to_json() == uninterrupted.to_json()
        step4 = str(tmp_path / f"{engine}-step4.pkl")
        Checkpointer(step4, 1, FleetConfig(**base).fingerprint()).save(
            *_resave_first_snapshot(snap, base, model, tmp_path, engine)
        )
        resumed = simulate(
            FleetConfig(resume_path=step4, **base), model=model
        )
        assert resumed.to_json() == uninterrupted.to_json()

    def test_resume_across_runtimes(self, tmp_path, model):
        # A serial run's snapshot resumes under the process runtime —
        # execution knobs are outside the fingerprint — and the bytes
        # still match.
        snap = str(tmp_path / "serial.pkl")
        uninterrupted = simulate(FleetConfig(**BASE), model=model)
        simulate(
            FleetConfig(checkpoint_path=snap, checkpoint_every=4, **BASE),
            model=model,
        )
        resumed = simulate(
            FleetConfig(resume_path=snap, runtime="process", jobs=4,
                        **BASE),
            model=model,
        )
        assert resumed.to_json() == uninterrupted.to_json()

    def test_resume_refuses_other_config(self, tmp_path, model):
        snap = str(tmp_path / "s.pkl")
        simulate(
            FleetConfig(checkpoint_path=snap, checkpoint_every=4, **BASE),
            model=model,
        )
        other = dict(BASE, seed=FleetConfig(**BASE).seed + 1)
        with pytest.raises(ConfigurationError, match="different"):
            simulate(FleetConfig(resume_path=snap, **other), model=model)


def _resave_first_snapshot(final_snap, base, model, tmp_path, engine):
    """Re-run the checkpointing sim capturing the step-4 snapshot.

    ``--checkpoint-every 4`` over 10 epochs overwrites step 4 with step
    8; to resume from a genuinely *mid-run* state we re-run with a
    fresh path and grab the first save before it is replaced.
    """
    import repro.fleet.checkpoint as checkpoint_mod

    captured = {}
    original_save = checkpoint_mod.Checkpointer.save

    def capturing_save(self, step, state):
        original_save(self, step, state)
        if "payload" not in captured:
            with open(self.path, "rb") as handle:
                captured["payload"] = pickle.load(handle)

    checkpoint_mod.Checkpointer.save = capturing_save
    try:
        snap = str(tmp_path / f"{engine}-capture.pkl")
        simulate(
            FleetConfig(checkpoint_path=snap, checkpoint_every=4, **base),
            model=model,
        )
    finally:
        checkpoint_mod.Checkpointer.save = original_save
    payload = captured["payload"]
    return payload["step"], payload["state"]


class TestCliCheckpointFlow:
    CLI = [
        "--policy", "greedy",
        "--epochs", "6",
        "--quota", "30",
        "--seed", "4",
        "--nic-fail-rate", "0.4",
        "--mean-time-to-fail", "2.0",
        "--format", "json",
    ]

    def test_checkpoint_resume_and_atomic_out(self, tmp_path, capsys):
        snap = str(tmp_path / "snap.pkl")
        out_a = str(tmp_path / "a.json")
        out_b = str(tmp_path / "b.json")
        argv = list(self.CLI) + [
            "--checkpoint-every", "3", "--checkpoint-path", snap,
            "--out", out_a,
        ]
        assert fleet_cli.main(argv) == 0
        capsys.readouterr()
        assert os.path.exists(snap)
        argv = list(self.CLI) + ["--resume", snap, "--out", out_b]
        assert fleet_cli.main(argv) == 0
        capsys.readouterr()
        with open(out_a, "rb") as a, open(out_b, "rb") as b:
            assert a.read() == b.read()
        # Atomic --out leaves no temp droppings next to the reports.
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["a.json", "b.json", "snap.pkl"]
