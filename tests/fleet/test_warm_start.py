"""Warm-start determinism: the cross-epoch solution cache's contract.

``warm_start=True`` changes the solver's iterate path (seeded,
undamped starts), so warm reports are *not* bit-equal to cold ones —
instead they carry their own byte-determinism contract, pinned here:
same seed + ``warm_start=True`` ⇒ byte-identical reports across

- execution runtimes and job counts (the warm cache travels inside
  ``PodScoreTask`` payloads, never in worker state),
- the epoch and (quantized, zero-cost) event engines,
- heterogeneous hardware mixes and injected faults,
- checkpoint/resume (the cache is snapshotted and replayed).

Plus the config surface: the CLI flag, the fingerprint (a warm
checkpoint only resumes into a warm run), and the all-zero
``telemetry.warm_start`` section when the knob is off.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import FleetConfig, build_model, simulate
from repro.fleet import __main__ as fleet_cli

BASE = dict(policy="yala", epochs=8, quota=60, initial_services=5)


@pytest.fixture(scope="module")
def model():
    config = FleetConfig(**BASE)
    return build_model(
        config.policy, config.nf_pool, config.seed, config.quota, 1
    )


def _run(model=None, **over):
    merged = {**BASE, "warm_start": True, **over}
    return simulate(FleetConfig(**merged), model=model).to_json()


class TestWarmByteDeterminism:
    def test_runtime_and_jobs_invariance(self, model):
        serial = _run(model)
        for jobs in (1, 2, 4):
            assert (
                _run(model, runtime="process", jobs=jobs) == serial
            ), f"jobs={jobs}"

    def test_epoch_vs_quantized_event_engine(self, model):
        epoch = json.loads(_run(model))
        event = json.loads(
            _run(model, engine="event", quantize_arrivals=True)
        )
        assert event["fleet"] == epoch

    def test_with_hetero_mix_and_faults(self):
        over = dict(
            nic_mix="bluefield2=0.7,pensando=0.3",
            pods=2,
            nic_fail_rate=0.3,
            nic_degrade_rate=0.3,
            mean_time_to_fail=3.0,
        )
        serial = _run(None, **over)
        assert _run(None, runtime="process", jobs=2, **over) == serial

    def test_warm_telemetry_records_hits_and_invalidations(self, model):
        # Churny enough that resident sets both persist (hits) and
        # change under the same NIC (invalidations).
        payload = json.loads(_run(model, epochs=12, arrival_rate=2.0))
        warm = payload["telemetry"]["warm_start"]
        assert warm["enabled"] is True
        assert warm["hits"] > 0
        assert warm["invalidations"] > 0
        assert warm["warm_scenarios"] > 0
        assert (
            warm["warm_scenarios"] + warm["cold_scenarios"]
            == payload["telemetry"]["solver"]["scenarios_solved"]
        )

    def test_warm_solves_take_fewer_iterations(self, model):
        warm = json.loads(_run(model, epochs=12, arrival_rate=2.0))
        section = warm["telemetry"]["warm_start"]
        mean_warm = section["warm_iterations"] / section["warm_scenarios"]
        mean_cold = section["cold_iterations"] / section["cold_scenarios"]
        assert mean_warm < mean_cold

    def test_cold_run_keeps_allzero_section(self, model):
        payload = json.loads(_run(model, warm_start=False))
        assert payload["telemetry"]["warm_start"] == {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "warm_iterations": 0,
            "warm_scenarios": 0,
            "cold_iterations": 0,
            "cold_scenarios": 0,
        }

    def test_warm_report_renders_cache_line(self, model):
        config = FleetConfig(**{**BASE, "warm_start": True})
        text = simulate(config, model=model).render()
        assert "warm" in text.lower()
        cold = simulate(FleetConfig(**BASE), model=model).render()
        assert "warm" not in cold.lower()


class TestWarmCheckpointResume:
    def test_resume_byte_parity(self, tmp_path, model):
        snap = str(tmp_path / "warm.pkl")
        uninterrupted = _run(model)
        _run(model, checkpoint_path=snap, checkpoint_every=3)
        resumed = _run(model, resume_path=snap)
        assert resumed == uninterrupted

    def test_resume_across_runtimes(self, tmp_path, model):
        snap = str(tmp_path / "warm.pkl")
        uninterrupted = _run(model)
        _run(model, checkpoint_path=snap, checkpoint_every=3)
        resumed = _run(model, resume_path=snap, runtime="process", jobs=2)
        assert resumed == uninterrupted

    def test_event_engine_resume(self, tmp_path, model):
        snap = str(tmp_path / "warm-event.pkl")
        over = dict(engine="event", quantize_arrivals=True)
        uninterrupted = _run(model, **over)
        _run(model, checkpoint_path=snap, checkpoint_every=3, **over)
        resumed = _run(model, resume_path=snap, **over)
        assert resumed == uninterrupted

    def test_warm_checkpoint_refuses_cold_resume(self, tmp_path, model):
        snap = str(tmp_path / "warm.pkl")
        _run(model, checkpoint_path=snap, checkpoint_every=3)
        with pytest.raises(ConfigurationError, match="configuration"):
            _run(model, resume_path=snap, warm_start=False)


class TestWarmConfigSurface:
    def test_default_off(self):
        assert FleetConfig().warm_start is False

    def test_fingerprint_includes_warm_start(self):
        cold = FleetConfig(**BASE)
        warm = FleetConfig(**BASE, warm_start=True)
        assert cold.fingerprint() != warm.fingerprint()
        assert warm.fingerprint()["warm_start"] is True

    def test_round_trip(self):
        config = FleetConfig(**BASE, warm_start=True)
        assert FleetConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "argv,expected",
        [([], False), (["--warm-start"], True), (["--no-warm-start"], False)],
    )
    def test_cli_flag(self, argv, expected):
        args = fleet_cli.build_parser().parse_args(argv)
        assert FleetConfig.from_cli_args(args).warm_start is expected
