"""Tests for the shared placement model and fleet policies."""

import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.fleet.churn import ServiceRequest
from repro.fleet.cluster import Cluster, ServiceInstance
from repro.fleet.policies import (
    FLEET_POLICY_NAMES,
    DiagnosisRebalancePolicy,
    PlacementModel,
    make_policy,
)
from repro.fleet.traces import make_trace
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector
from repro.traffic.profile import TrafficProfile


def _instance(n: int, nf_name: str = "acl", sla: float = 0.1) -> ServiceInstance:
    request = ServiceRequest(
        instance_id=f"svc-0-{n}",
        nf_name=nf_name,
        sla_drop_fraction=sla,
        trace=make_trace("static", seed=n),
        arrival_epoch=0,
        departure_epoch=10,
    )
    return ServiceInstance(request=request, traffic=TrafficProfile())


@pytest.fixture()
def plain_model(noisy_nic) -> PlacementModel:
    """A model without trained predictors (greedy/monopolization)."""
    return PlacementModel(collector=ProfilingCollector(noisy_nic), nic=noisy_nic)


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in FLEET_POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("round-robin")


class TestPlacementModel:
    def test_requires_yala_or_collector(self):
        with pytest.raises(ConfigurationError):
            PlacementModel()

    def test_yala_feasibility_needs_trained_system(self, plain_model):
        with pytest.raises(PlacementError):
            plain_model.predicted_feasible_yala([_instance(0)])

    def test_slomo_feasibility_needs_predictor(self, plain_model):
        with pytest.raises(PlacementError):
            plain_model.predicted_feasible_slomo([_instance(0)])

    def test_greedy_utilisation_additive(self, plain_model):
        one = plain_model.greedy_utilisation([_instance(0)])
        two = plain_model.greedy_utilisation([_instance(0), _instance(1)])
        assert two == pytest.approx(2 * one)
        assert one > 0.0

    def test_shared_with_scheduler(self, small_system):
        """The Table 6 scheduler delegates to the shared predicates."""
        from repro.usecases.scheduling import NfArrival, Scheduler

        scheduler = Scheduler(small_system)
        model = PlacementModel(yala=small_system)
        arrivals = [
            NfArrival(nf_name="flowstats", sla_drop_fraction=0.15),
            NfArrival(nf_name="nids", sla_drop_fraction=0.15),
        ]
        assert scheduler._predicted_feasible_yala(
            arrivals
        ) == model.predicted_feasible_yala(arrivals)
        assert scheduler._greedy_utilisation(arrivals) == model.greedy_utilisation(
            arrivals
        )


class TestPlacementChoices:
    def test_monopolization_always_new_nic(self, plain_model):
        cluster = Cluster(bluefield2_spec())
        policy = make_policy("monopolization")
        cluster.place(_instance(0))
        assert policy.choose_nic(cluster, _instance(1), plain_model) is None

    def test_greedy_fills_existing_nic(self, plain_model):
        cluster = Cluster(bluefield2_spec())
        policy = make_policy("greedy")
        cluster.place(_instance(0))
        chosen = policy.choose_nic(cluster, _instance(1), plain_model)
        assert chosen == cluster.nics[0].nic_id

    def test_greedy_respects_capacity(self, plain_model):
        cluster = Cluster(bluefield2_spec())
        policy = make_policy("greedy")
        nic_id = cluster.place(_instance(0))
        for n in range(1, cluster.max_residents_per_nic):
            cluster.place(_instance(n), nic_id)
        assert policy.choose_nic(cluster, _instance(9), plain_model) is None


class TestDiagnosisRebalancer:
    def test_migrates_violated_service_to_fresh_nic(self, plain_model):
        cluster = Cluster(bluefield2_spec())
        policy = DiagnosisRebalancePolicy()
        nic_id = cluster.place(_instance(0, sla=0.05))
        cluster.place(_instance(1, sla=0.05), nic_id)
        # svc-0-1 measured far above its SLA; the only NIC is the
        # violating one, so the bottlenecked NF moves to a fresh NIC
        # (no feasibility probe needed).
        moved = policy.rebalance(
            cluster, epoch=3, model=plain_model,
            last_drops={"svc-0-0": 0.01, "svc-0-1": 0.40},
        )
        assert moved == 1
        record = cluster.migration_log[-1]
        assert record.instance_id == "svc-0-1"
        assert record.reason == "sla-violation"
        assert cluster.nics_used == 2

    def test_no_violations_no_moves(self, plain_model):
        cluster = Cluster(bluefield2_spec())
        policy = DiagnosisRebalancePolicy()
        nic_id = cluster.place(_instance(0))
        cluster.place(_instance(1), nic_id)
        moved = policy.rebalance(
            cluster, epoch=1, model=plain_model,
            last_drops={"svc-0-0": 0.02, "svc-0-1": 0.03},
        )
        assert moved == 0
        assert cluster.migration_log == []

    def test_migration_cap(self, plain_model):
        cluster = Cluster(bluefield2_spec())
        policy = DiagnosisRebalancePolicy(max_migrations_per_epoch=1)
        limit = cluster.max_residents_per_nic
        # Two full NICs, one violated service on each: full peers leave
        # no migration candidates, so each violator would go to a fresh
        # NIC — but the per-epoch cap stops after the first.
        for nic in range(2):
            nic_id = cluster.place(_instance(10 * nic, sla=0.05))
            for n in range(1, limit):
                cluster.place(_instance(10 * nic + n, sla=0.05), nic_id)
        drops = {s.instance_id: 0.0 for s in cluster.services}
        drops["svc-0-0"] = 0.5
        drops["svc-0-10"] = 0.5
        moved = policy.rebalance(cluster, 2, plain_model, drops)
        assert moved == 1
