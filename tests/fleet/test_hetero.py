"""Heterogeneous fleet: mixed-pool provisioning, per-target scoring."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.fleet.churn import ChurnProcess, ServiceRequest
from repro.fleet.cluster import Cluster, NicProvisioner, parse_nic_mix
from repro.fleet.cluster import ServiceInstance
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import PlacementModel
from repro.fleet.traces import make_trace
from repro.nic.nic import SmartNic
from repro.nic.spec import get_spec
from repro.profiling.collector import ProfilingCollector
from repro.rng import derive_seed
from repro.traffic.profile import TrafficProfile

MIX = {"bluefield2": 0.6, "pensando": 0.4}
POOL = ("flowstats", "nat", "nids")


def _instance(n: int) -> ServiceInstance:
    request = ServiceRequest(
        instance_id=f"svc-0-{n}",
        nf_name="acl",
        sla_drop_fraction=0.1,
        trace=make_trace("static", seed=n),
        arrival_epoch=0,
        departure_epoch=10,
    )
    return ServiceInstance(request=request, traffic=TrafficProfile())


@pytest.fixture(scope="module")
def mixed_model():
    bf2 = SmartNic(get_spec("bluefield2"), seed=2025)
    pen = SmartNic(get_spec("pensando"), seed=derive_seed(2025, "pensando"))
    model = PlacementModel(collector=ProfilingCollector(bf2), nic=bf2)
    model.add_target(collector=ProfilingCollector(pen), nic=pen)
    return model


class TestParseNicMix:
    def test_weighted_mix(self):
        assert parse_nic_mix("bluefield2=0.7,pensando=0.3") == {
            "bluefield2": 0.7,
            "pensando": 0.3,
        }

    def test_bare_name_is_weight_one(self):
        assert parse_nic_mix("pensando") == {"pensando": 1.0}

    @pytest.mark.parametrize(
        "text",
        ["", "bluefield2=0", "bluefield2=-1", "bluefield2=x", "nope=1",
         "bluefield2=1,bluefield2=2", "bluefield2=,pensando=0.3"],
    )
    def test_rejects_bad_mixes(self, text):
        with pytest.raises(ConfigurationError):
            parse_nic_mix(text)


class TestProvisioner:
    def test_deterministic_spec_sequence(self):
        a = NicProvisioner(MIX, seed=7)
        b = NicProvisioner(MIX, seed=7)
        sequence = [a.spec_for(n).name for n in range(40)]
        assert sequence == [b.spec_for(n).name for n in range(40)]
        assert set(sequence) == {"bluefield2", "pensando"}

    def test_different_seed_differs(self):
        a = [NicProvisioner(MIX, seed=7).spec_for(n).name for n in range(40)]
        b = [NicProvisioner(MIX, seed=8).spec_for(n).name for n in range(40)]
        assert a != b

    def test_single_target_is_constant(self):
        provisioner = NicProvisioner({"pensando": 1.0}, seed=3)
        assert {provisioner.spec_for(n).name for n in range(10)} == {"pensando"}

    def test_mix_normalised(self):
        provisioner = NicProvisioner({"bluefield2": 3.0, "pensando": 1.0})
        assert provisioner.mix == (("bluefield2", 0.75), ("pensando", 0.25))


class TestHeterogeneousCluster:
    def test_per_nic_capacity(self):
        # Force a pensando NIC (16 cores -> 8 residents) via a pure mix.
        cluster = Cluster(NicProvisioner({"pensando": 1.0}))
        nic_id = cluster.place(_instance(0))
        nic = cluster.nic_of("svc-0-0")
        assert nic.target == "pensando"
        assert nic.max_residents == 8
        for n in range(1, 8):
            cluster.place(_instance(n), nic_id)
        with pytest.raises(PlacementError):
            cluster.place(_instance(99), nic_id)

    def test_pool_capacity_bound_is_roomiest_target(self):
        cluster = Cluster(NicProvisioner(MIX, seed=1))
        assert cluster.max_residents_per_nic == 8  # pensando's capacity

    def test_homogeneous_spec_constructor_unchanged(self):
        cluster = Cluster(get_spec("bluefield2"))
        cluster.place(_instance(0))
        nic = cluster.nic_of("svc-0-0")
        assert nic.target == "bluefield2"
        assert nic.max_residents == 4
        assert cluster.spec == get_spec("bluefield2")


class TestHeterogeneousEngine:
    def _engine(self, model, score_mode):
        provisioner = NicProvisioner(MIX, seed=derive_seed(11, "nic-mix"))
        churn = ChurnProcess(
            nf_names=POOL,
            seed=77,
            arrival_rate=2.5,
            mean_lifetime=8.0,
            initial_services=6,
        )
        return FleetEngine(
            "greedy", churn, model, score_mode=score_mode,
            provisioner=provisioner,
        )

    def test_mixed_batch_matches_loop_bit_for_bit(self, mixed_model):
        batched = self._engine(mixed_model, "batch").run(5)
        looped = self._engine(mixed_model, "loop").run(5)
        assert batched.metrics == looped.metrics
        assert batched.pools == looped.pools
        assert batched.migrations == looped.migrations
        a = json.loads(batched.to_json())
        b = json.loads(looped.to_json())
        a.pop("score_mode")
        b.pop("score_mode")
        assert a == b

    def test_both_pools_provisioned_and_reported(self, mixed_model):
        report = self._engine(mixed_model, "batch").run(5)
        targets = {p.target for p in report.pools if p.nics_used > 0}
        assert targets == {"bluefield2", "pensando"}
        summary = report.pool_summary()
        assert set(summary) == {"bluefield2", "pensando"}
        rendered = report.render()
        assert "nic_mix=bluefield2=0.60,pensando=0.40" in rendered
        assert "pool bluefield2:" in rendered
        assert "pool pensando:" in rendered

    def test_mix_target_without_model_rejected(self):
        bf2 = SmartNic(get_spec("bluefield2"), seed=1)
        model = PlacementModel(collector=ProfilingCollector(bf2), nic=bf2)
        churn = ChurnProcess(nf_names=POOL, seed=1)
        with pytest.raises(ConfigurationError):
            FleetEngine(
                "greedy", churn, model,
                provisioner=NicProvisioner(MIX, seed=1),
            )

    def test_unknown_target_predicate_rejected(self, mixed_model):
        with pytest.raises(PlacementError):
            mixed_model.greedy_utilisation([_instance(0)], "connectx")

    def test_duplicate_add_target_rejected(self):
        bf2 = SmartNic(get_spec("bluefield2"), seed=1)
        model = PlacementModel(collector=ProfilingCollector(bf2), nic=bf2)
        with pytest.raises(ConfigurationError):
            model.add_target(
                collector=ProfilingCollector(bf2), nic=bf2
            )
