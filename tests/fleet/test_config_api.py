"""Tests for the fleet front door: FleetConfig + simulate().

One validated object holds every knob; ``simulate(config)`` reproduces
the ``python -m repro.fleet`` CLI byte-identically; the JSON report
carries a pinned ``schema_version`` and a stable field-name structure
(the golden test pins *names*, never float values — the schema is the
contract, the numbers belong to the determinism tests).
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import __main__ as fleet_cli
from repro.fleet.config import DEFAULT_POOL, FleetConfig, simulate
from repro.fleet.engine import FLEET_REPORT_SCHEMA_VERSION


def _paths(node, prefix=""):
    """Recursive dict-key paths; lists descend into their first item."""
    out = set()
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            out.add(path)
            out |= _paths(value, path)
    elif isinstance(node, list) and node:
        out |= _paths(node[0], prefix + "[]")
    return out


class TestValidation:
    def test_defaults_valid(self):
        config = FleetConfig()
        assert config.policy == "yala"
        assert config.nf_pool == DEFAULT_POOL

    @pytest.mark.parametrize("kwargs", [
        {"policy": "nope"},
        {"engine": "steam"},
        {"score_mode": "vibes"},
        {"runtime": "threads"},
        {"epochs": 0},
        {"jobs": 0},
        {"quota": 0},
        {"nf_pool": ()},
        {"nic_mix": "bluefield2=0"},
        {"pods": 2, "pod_size": 4},
        {"migration_duration": -1.0},
        {"nic_fail_rate": -0.1},
        {"nic_fail_rate": 0.8, "nic_degrade_rate": 0.5},
        {"pod_outage_rate": 0.5},  # needs a fixed pod count
        {"mean_time_to_fail": 0.0},
        {"checkpoint_path": "snap.pkl"},  # needs checkpoint_every
        {"checkpoint_every": 2},  # needs checkpoint_path
        {"checkpoint_path": "snap.pkl", "checkpoint_every": 0},
        {"trace_format": "xml"},
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            FleetConfig(**kwargs)

    def test_nf_pool_list_normalised_to_tuple(self):
        config = FleetConfig(nf_pool=["flowstats", "nat"])
        assert config.nf_pool == ("flowstats", "nat")


class TestRoundTrip:
    def test_to_dict_from_dict(self):
        config = FleetConfig(
            policy="greedy",
            engine="event",
            epochs=7,
            seed=9,
            nic_mix="bluefield2=0.7,pensando=0.3",
            pods=4,
            runtime="process",
            jobs=2,
            migration_duration=0.5,
            cross_pod_migration_duration=1.5,
            nic_fail_rate=0.1,
            nic_degrade_rate=0.2,
            pod_outage_rate=0.3,
            mean_time_to_fail=5.0,
            mean_repair_time=2.0,
        )
        assert FleetConfig.from_dict(config.to_dict()) == config

    def test_fingerprint_drops_execution_knobs_only(self):
        serial = FleetConfig(policy="greedy", seed=7)
        process = FleetConfig(
            policy="greedy", seed=7, runtime="process", jobs=4,
            checkpoint_path="snap.pkl", checkpoint_every=2,
            trace_out="trace.json", trace_format="chrome",
            metrics_out="metrics.json",
        )
        assert serial.fingerprint() == process.fingerprint()
        other = FleetConfig(policy="greedy", seed=8)
        assert other.fingerprint() != serial.fingerprint()
        faulty = FleetConfig(policy="greedy", seed=7, nic_fail_rate=0.5)
        assert faulty.fingerprint() != serial.fingerprint()

    def test_to_dict_is_json_ready(self):
        payload = FleetConfig().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["nf_pool"] == list(DEFAULT_POOL)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="banana"):
            FleetConfig.from_dict({"banana": 1})


class TestFromCliArgs:
    def _args(self, argv):
        import argparse

        # The CLI parser lives inside main(); emulate its namespace.
        ns = argparse.Namespace(
            policy="greedy",
            engine="epoch",
            epochs=3,
            seed=1,
            score_mode="batch",
            nf_pool="flowstats,nat",
            arrival_rate=2.0,
            mean_lifetime=12.0,
            initial_services=4,
            nic_mix="bluefield2",
            pods=None,
            pod_size=None,
            quota=50,
            runtime="serial",
            jobs=1,
            workers=None,
            quantize_arrivals=False,
            migration_duration=0.0,
            cross_pod_migration_duration=None,
            spinup_latency=0.0,
            probe_period=1.0,
            nic_fail_rate=0.0,
            nic_degrade_rate=0.0,
            pod_outage_rate=0.0,
            mean_time_to_fail=8.0,
            mean_repair_time=3.0,
            checkpoint_every=None,
            checkpoint_path=None,
            resume=None,
            trace_out=None,
            trace_format="jsonl",
            metrics_out=None,
            warm_start=False,
        )
        for key, value in argv.items():
            setattr(ns, key, value)
        return ns

    def test_splits_nf_pool(self):
        config = FleetConfig.from_cli_args(self._args({}))
        assert config.nf_pool == ("flowstats", "nat")

    def test_workers_alias_warns_and_wins(self):
        with pytest.warns(DeprecationWarning, match="--jobs"):
            config = FleetConfig.from_cli_args(self._args({"workers": 3}))
        assert config.jobs == 3


class TestFacadeMatchesCli:
    CLI = [
        "--policy", "greedy",
        "--epochs", "3",
        "--seed", "11",
        "--arrival-rate", "2.0",
        "--nf-pool", "flowstats,nat,acl",
        "--format", "json",
    ]
    CONFIG = FleetConfig(
        policy="greedy",
        epochs=3,
        seed=11,
        arrival_rate=2.0,
        nf_pool=("flowstats", "nat", "acl"),
    )

    def test_byte_identical_stdout(self, capsys):
        assert fleet_cli.main(list(self.CLI)) == 0
        out = capsys.readouterr().out
        assert out == simulate(self.CONFIG).to_json() + "\n"

    def test_process_runtime_same_bytes(self, capsys):
        argv = list(self.CLI) + ["--runtime", "process", "--jobs", "2",
                                 "--pods", "2"]
        assert fleet_cli.main(argv) == 0
        out = capsys.readouterr().out
        config = FleetConfig.from_dict(
            {**self.CONFIG.to_dict(), "runtime": "process", "jobs": 2,
             "pods": 2}
        )
        serial_twin = FleetConfig.from_dict(
            {**config.to_dict(), "runtime": "serial", "jobs": 1}
        )
        payload = json.loads(out)
        assert payload["topology"]["pods"] == 2
        assert out == simulate(serial_twin).to_json() + "\n"


#: The fleet report schema, by field name. Adding a field is a schema
#: bump (update this set, FLEET_REPORT_SCHEMA_VERSION and
#: docs/fleet_report_schema.md together); renaming or removing one
#: breaks downstream consumers and must fail here first.
FLEET_REPORT_PATHS = {
    "epochs",
    "faults",
    "faults.failure_drop_service_seconds",
    "faults.failure_violation_service_seconds",
    "faults.max_time_to_recover",
    "faults.mean_time_to_recover",
    "faults.nic_degradations",
    "faults.nic_failures",
    "faults.nic_restores",
    "faults.pod_outages",
    "faults.pod_restores",
    "faults.replacements",
    "faults.services_evicted",
    "faults.services_lost",
    "faults.services_replaced",
    "metrics",
    "metrics[].aggregate_throughput_mpps",
    "metrics[].arrivals",
    "metrics[].departures",
    "metrics[].epoch",
    "metrics[].migrations",
    "metrics[].nics_used",
    "metrics[].services",
    "metrics[].sla_violations",
    "metrics[].utilisation_pct",
    "metrics[].violation_rate_pct",
    "metrics[].wastage_pct",
    "migrations",
    "nic_mix",
    "nic_mix[].target",
    "nic_mix[].weight",
    "policy",
    "pool_summary",
    "pool_summary.bluefield2",
    "pool_summary.bluefield2.mean_nics",
    "pool_summary.bluefield2.mean_services",
    "pool_summary.bluefield2.mean_utilisation_pct",
    "pool_summary.bluefield2.mean_wastage_pct",
    "pools",
    "pools[].epoch",
    "pools[].nics_used",
    "pools[].services",
    "pools[].target",
    "pools[].utilisation_pct",
    "pools[].wastage_pct",
    "schema_version",
    "score_mode",
    "seed",
    "summary",
    "summary.mean_nics",
    "summary.mean_utilisation_pct",
    "summary.mean_wastage_pct",
    "summary.total_migrations",
    "summary.violation_rate_pct",
    "telemetry",
    "telemetry.residuals",
    "telemetry.scoring",
    "telemetry.scoring.mixes_solved",
    "telemetry.scoring.pod_tasks",
    "telemetry.scoring.pod_tasks[].pod",
    "telemetry.scoring.pod_tasks[].tasks",
    "telemetry.solver",
    "telemetry.solver.iterations_total",
    "telemetry.solver.max_iterations",
    "telemetry.solver.per_epoch",
    "telemetry.solver.per_epoch[].epoch",
    "telemetry.solver.per_epoch[].iterations",
    "telemetry.solver.per_epoch[].scenarios",
    "telemetry.solver.scenarios_solved",
    "telemetry.warm_start",
    "telemetry.warm_start.cold_iterations",
    "telemetry.warm_start.cold_scenarios",
    "telemetry.warm_start.enabled",
    "telemetry.warm_start.hits",
    "telemetry.warm_start.invalidations",
    "telemetry.warm_start.misses",
    "telemetry.warm_start.warm_iterations",
    "telemetry.warm_start.warm_scenarios",
    "topology",
    "topology.pod_size",
    "topology.pods",
    "topology.pods_per_rack",
}

EVENT_REPORT_TOP_PATHS = {
    "config",
    "config.cross_pod_migration_duration",
    "config.migration_duration",
    "config.observe_changes",
    "config.probe_period",
    "config.quantize_arrivals",
    "config.rebalance_period",
    "config.spinup_latency",
    "engine",
    "event_log",
    "fleet",
    "horizon",
    "observations",
    "observations[].aggregate_throughput_mpps",
    "observations[].drop_sum",
    "observations[].kind",
    "observations[].nics_used",
    "observations[].services",
    "observations[].sla_violations",
    "observations[].time",
    "schema_version",
    "summary",
    "summary.drop_service_seconds",
    "summary.event_counts",
    "summary.events_processed",
    "summary.migrations_cancelled",
    "summary.migrations_completed",
    "summary.migrations_started",
    "summary.observations",
    "summary.probes",
    "summary.violation_service_seconds",
    "timed_migrations",
}


class TestReportSchema:
    @pytest.fixture(scope="class")
    def fleet_payload(self):
        report = simulate(
            FleetConfig(policy="greedy", epochs=3, arrival_rate=2.0)
        )
        return json.loads(report.to_json())

    @pytest.fixture(scope="class")
    def event_payload(self):
        report = simulate(
            FleetConfig(policy="greedy", engine="event", epochs=3,
                        arrival_rate=2.0)
        )
        return json.loads(report.to_json())

    def test_schema_version_pinned(self, fleet_payload, event_payload):
        assert FLEET_REPORT_SCHEMA_VERSION == 5
        assert fleet_payload["schema_version"] == 5
        assert event_payload["schema_version"] == 5
        assert event_payload["fleet"]["schema_version"] == 5

    def test_fleet_report_golden_structure(self, fleet_payload):
        assert _paths(fleet_payload) == FLEET_REPORT_PATHS

    def test_event_report_golden_structure(self, event_payload):
        got = {
            p for p in _paths(event_payload)
            if not p.startswith(("fleet.", "summary.event_counts."))
        }
        assert got == EVENT_REPORT_TOP_PATHS
        # The embedded fleet report is the same schema, reprefixed.
        embedded = _paths(event_payload["fleet"])
        assert embedded == FLEET_REPORT_PATHS

    def test_json_is_sorted_and_stable(self, fleet_payload):
        # sort_keys is part of the byte-identity contract.
        text = json.dumps(fleet_payload, sort_keys=True, indent=2)
        assert json.loads(text) == fleet_payload
