"""Tests for the typed event layer of the continuous-time fleet core.

Covers the queue's stable ``(time, priority, seq)`` total order, the
seed purity of the derived event streams (timed arrivals, traffic
change points) and the :class:`EventConfig` validation/preset.
"""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess
from repro.fleet.events import (
    EVENT_TYPES,
    Arrival,
    Departure,
    Event,
    EventConfig,
    EventQueue,
    MigrationComplete,
    MigrationStart,
    NicFail,
    NicRestore,
    PodFail,
    PodRestore,
    Probe,
    RebalanceTimer,
    TrafficChange,
)
from repro.fleet.traces import make_trace
from repro.traffic.profile import TrafficProfile

BASE = TrafficProfile(50_000, 1000, 500.0)


class TestEventOrdering:
    def test_time_dominates(self):
        queue = EventQueue()
        queue.push(Probe(time=2.0))
        queue.push(Departure(time=1.0, instance_id="a"))
        queue.push(Arrival(time=0.5))
        assert [e.time for e in _drain(queue)] == [0.5, 1.0, 2.0]

    def test_priority_mirrors_epoch_phases_at_equal_time(self):
        """All eleven types at one timestamp pop in phase order."""
        queue = EventQueue()
        events = [
            Probe(time=1.0),
            Arrival(time=1.0),
            RebalanceTimer(time=1.0),
            MigrationStart(time=1.0, instance_id="m"),
            MigrationComplete(time=1.0, instance_id="m"),
            TrafficChange(time=1.0, instance_id="t"),
            Departure(time=1.0, instance_id="d"),
            NicFail(time=1.0, nic_id=0),
            PodFail(time=1.0, pod_id=0),
            PodRestore(time=1.0, pod_id=0),
            NicRestore(time=1.0, nic_id=0),
        ]
        for event in events:
            queue.push(event)
        popped = [type(e) for e in _drain(queue)]
        assert popped == [
            NicRestore,
            PodRestore,
            PodFail,
            NicFail,
            Departure,
            TrafficChange,
            MigrationComplete,
            MigrationStart,
            RebalanceTimer,
            Arrival,
            Probe,
        ]
        # EVENT_TYPES declares exactly this priority order.
        assert popped == list(EVENT_TYPES)
        assert [t.priority for t in popped] == sorted(
            t.priority for t in popped
        )

    def test_equal_time_and_priority_is_fifo(self):
        queue = EventQueue()
        for name in ("first", "second", "third"):
            queue.push(Departure(time=3.0, instance_id=name))
        assert [e.instance_id for e in _drain(queue)] == [
            "first",
            "second",
            "third",
        ]

    def test_pop_sequence_is_pure_function_of_pushes(self):
        def build():
            queue = EventQueue()
            queue.push(Probe(time=1.0))
            queue.push(Arrival(time=0.25))
            queue.push(Departure(time=1.0, instance_id="x"))
            queue.push(TrafficChange(time=1.0, instance_id="y"))
            queue.push(RebalanceTimer(time=0.25))
            return _drain(queue)

        a, b = build(), build()
        assert a == b

    def test_len_peek_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(Probe(time=0.0))
        queue.push(Probe(time=1.0))
        assert queue and len(queue) == 2
        assert queue.peek().time == 0.0
        assert len(queue) == 2  # peek does not pop

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Probe(time=-0.5)

    def test_describe_is_informative(self):
        assert "svc-1-0" in Departure(time=1.0, instance_id="svc-1-0").describe()
        start = MigrationStart(
            time=2.0, instance_id="svc-1-0", from_nic=0, to_nic=3, duration=1.5
        )
        text = start.describe()
        assert "nic0->nic3" in text and "1.5" in text


def _drain(queue: EventQueue) -> list[Event]:
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestEventConfig:
    def test_epoch_equivalent_preset(self):
        cfg = EventConfig.epoch_equivalent()
        assert cfg.quantize_arrivals is True
        assert cfg.migration_duration == 0.0
        assert cfg.spinup_latency == 0.0
        assert cfg.probe_period == 1.0
        assert cfg.rebalance_period == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"migration_duration": -1.0},
            {"spinup_latency": -0.1},
            {"probe_period": 0.0},
            {"rebalance_period": -2.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EventConfig(**kwargs)


class TestTimedArrivals:
    """Seed purity of :meth:`ChurnProcess.arrival_times_for`."""

    def _churn(self, seed=77):
        return ChurnProcess(
            nf_names=("flowstats", "nat"),
            seed=seed,
            arrival_rate=3.0,
            mean_lifetime=8.0,
            initial_services=4,
        )

    def test_marks_identical_to_arrivals_for(self):
        churn = self._churn()
        for epoch in range(5):
            timed = churn.arrival_times_for(epoch)
            assert [r for _, r in timed] == churn.arrivals_for(epoch)

    def test_pure_in_seed_and_epoch(self):
        a = [self._churn().arrival_times_for(e) for e in range(5)]
        # Evaluate in reverse order on a fresh process: same schedule.
        churn = self._churn()
        b = [churn.arrival_times_for(e) for e in reversed(range(5))]
        assert a == list(reversed(b))

    def test_times_sorted_within_epoch_interval(self):
        churn = self._churn()
        for epoch in range(1, 6):
            times = [t for t, _ in churn.arrival_times_for(epoch)]
            assert times == sorted(times)
            assert all(epoch <= t < epoch + 1 for t in times)

    def test_epoch_zero_arrives_at_time_zero(self):
        assert all(
            t == 0.0 for t, _ in self._churn().arrival_times_for(0)
        )

    def test_quantize_snaps_to_boundary(self):
        churn = self._churn()
        for epoch in range(4):
            timed = churn.arrival_times_for(epoch, quantize=True)
            assert all(t == float(epoch) for t, _ in timed)
            assert [r for _, r in timed] == churn.arrivals_for(epoch)

    def test_different_seed_different_times(self):
        a = self._churn(seed=77)
        b = self._churn(seed=78)
        times_a = [t for e in range(1, 6) for t, _ in a.arrival_times_for(e)]
        times_b = [t for e in range(1, 6) for t, _ in b.arrival_times_for(e)]
        assert times_a != times_b


class TestChangePoints:
    """:meth:`TrafficTrace.next_change_after` chains correctly."""

    def test_static_never_changes(self):
        trace = make_trace("static", BASE, seed=1)
        assert trace.next_change_after(0.0) is None
        assert trace.next_change_after(7.3) is None

    @pytest.mark.parametrize("kind", ["diurnal", "burst", "random_walk"])
    def test_dynamic_kinds_change_at_epoch_boundaries(self, kind):
        trace = make_trace(kind, BASE, seed=4)
        assert trace.next_change_after(0.0) == 1.0
        assert trace.next_change_after(2.0) == 3.0
        assert trace.next_change_after(2.4) == 3.0

    def test_flash_crowd_exposes_midpoint_onset(self):
        trace = make_trace(
            "flash_crowd", BASE, seed=4, onset_time=2.5, surge_factor=4.0
        )
        assert trace.next_change_after(2.0) == 2.5  # the off-grid onset
        assert trace.next_change_after(2.5) == 3.0  # then back on the grid
        assert trace.next_change_after(0.0) == 1.0
        # Chaining from 0 walks 1.0, 2.0, 2.5, 3.0, ...
        chain, t = [], 0.0
        for _ in range(5):
            t = trace.next_change_after(t)
            chain.append(t)
        assert chain == [1.0, 2.0, 2.5, 3.0, 4.0]

    def test_flash_crowd_integer_onset_stays_on_grid(self):
        trace = make_trace("flash_crowd", BASE, seed=4)  # seeded int onset
        for t in range(6):
            assert trace.next_change_after(float(t)) == float(t + 1)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("static", BASE, seed=1).next_change_after(-1.0)
