"""Tests for fleet cluster bookkeeping."""

import pytest

from repro.errors import PlacementError
from repro.fleet.churn import ServiceRequest
from repro.fleet.cluster import Cluster, ServiceInstance
from repro.fleet.traces import make_trace
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile


def _instance(n: int) -> ServiceInstance:
    request = ServiceRequest(
        instance_id=f"svc-0-{n}",
        nf_name="acl",
        sla_drop_fraction=0.1,
        trace=make_trace("static", seed=n),
        arrival_epoch=0,
        departure_epoch=10,
    )
    return ServiceInstance(request=request, traffic=TrafficProfile())


@pytest.fixture()
def cluster() -> Cluster:
    return Cluster(bluefield2_spec())


class TestPlacement:
    def test_place_on_new_nic(self, cluster):
        nic_id = cluster.place(_instance(0))
        assert cluster.nics_used == 1
        assert cluster.nic_of("svc-0-0").nic_id == nic_id

    def test_place_on_existing_nic(self, cluster):
        nic_id = cluster.place(_instance(0))
        assert cluster.place(_instance(1), nic_id) == nic_id
        assert len(cluster.nic_of("svc-0-1").residents) == 2

    def test_capacity_enforced(self, cluster):
        nic_id = cluster.place(_instance(0))
        for n in range(1, cluster.max_residents_per_nic):
            cluster.place(_instance(n), nic_id)
        with pytest.raises(PlacementError):
            cluster.place(_instance(99), nic_id)

    def test_double_placement_rejected(self, cluster):
        cluster.place(_instance(0))
        with pytest.raises(PlacementError):
            cluster.place(_instance(0))

    def test_services_in_placement_order(self, cluster):
        nic_id = cluster.place(_instance(0))
        cluster.place(_instance(1), nic_id)
        cluster.place(_instance(2))
        assert [s.instance_id for s in cluster.services] == [
            "svc-0-0",
            "svc-0-1",
            "svc-0-2",
        ]


class TestRemoval:
    def test_remove_retires_empty_nic(self, cluster):
        cluster.place(_instance(0))
        cluster.remove("svc-0-0")
        assert cluster.nics_used == 0
        assert cluster.total_departures == 1

    def test_remove_keeps_occupied_nic(self, cluster):
        nic_id = cluster.place(_instance(0))
        cluster.place(_instance(1), nic_id)
        cluster.remove("svc-0-0")
        assert cluster.nics_used == 1
        assert [s.instance_id for s in cluster.services] == ["svc-0-1"]

    def test_unknown_instance_rejected(self, cluster):
        with pytest.raises(PlacementError):
            cluster.remove("svc-9-9")


class TestMigration:
    def test_migrate_moves_and_logs(self, cluster):
        source = cluster.place(_instance(0))
        cluster.place(_instance(1), source)
        target = cluster.place(_instance(2))
        placed = cluster.migrate("svc-0-0", target, epoch=4, reason="test")
        assert placed == target
        record = cluster.migration_log[-1]
        assert (record.epoch, record.instance_id) == (4, "svc-0-0")
        assert (record.from_nic, record.to_nic) == (source, target)
        assert record.reason == "test"

    def test_migrate_to_fresh_nic(self, cluster):
        source = cluster.place(_instance(0))
        cluster.place(_instance(1), source)
        placed = cluster.migrate("svc-0-0", None, epoch=1)
        assert placed != source
        assert cluster.nics_used == 2

    def test_migrate_retires_emptied_source(self, cluster):
        cluster.place(_instance(0))
        target = cluster.place(_instance(1))
        cluster.migrate("svc-0-0", target, epoch=0)
        assert cluster.nics_used == 1

    def test_migration_not_counted_as_placement(self, cluster):
        cluster.place(_instance(0))
        cluster.place(_instance(1))
        before = cluster.total_placements
        cluster.migrate("svc-0-0", None, epoch=0)
        assert cluster.total_placements == before

    def test_migrate_to_same_nic_rejected(self, cluster):
        nic_id = cluster.place(_instance(0))
        with pytest.raises(PlacementError):
            cluster.migrate("svc-0-0", nic_id, epoch=0)

    def test_migrate_to_full_nic_rejected(self, cluster):
        target = cluster.place(_instance(0))
        for n in range(1, cluster.max_residents_per_nic):
            cluster.place(_instance(n), target)
        cluster.place(_instance(50))
        with pytest.raises(PlacementError):
            cluster.migrate("svc-0-50", target, epoch=0)
