"""Tests for the fleet epoch engine.

Covers the ISSUE's fleet contract: same seed => bit-identical
trajectory; batched epoch scoring == looped reference twin; policy
sanity (monopolization never violates SLAs, yala wastage <=
monopolization wastage).
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import PlacementModel
from repro.profiling.collector import ProfilingCollector

PLAIN_POOL = ("flowstats", "nat", "acl")
TRAINED_POOL = ("flowmonitor", "flowstats", "nids")
EPOCHS = 5


def _churn(pool, rate=2.0):
    return ChurnProcess(
        nf_names=pool,
        seed=77,
        arrival_rate=rate,
        mean_lifetime=8.0,
        initial_services=4,
    )


@pytest.fixture(scope="module")
def plain_model(noisy_nic):
    return PlacementModel(collector=ProfilingCollector(noisy_nic), nic=noisy_nic)


@pytest.fixture(scope="module")
def trained_model(small_system):
    return PlacementModel(yala=small_system)


def _strip_mode(report):
    payload = json.loads(report.to_json())
    payload.pop("score_mode")
    return payload


class TestDeterminism:
    def test_same_seed_bit_identical_trajectory(self, plain_model):
        a = FleetEngine("greedy", _churn(PLAIN_POOL), plain_model).run(EPOCHS)
        b = FleetEngine("greedy", _churn(PLAIN_POOL), plain_model).run(EPOCHS)
        assert a.to_json() == b.to_json()
        assert a.metrics == b.metrics
        assert a.migrations == b.migrations

    def test_engine_rerun_identical(self, plain_model):
        engine = FleetEngine("greedy", _churn(PLAIN_POOL), plain_model)
        assert engine.run(EPOCHS).to_json() == engine.run(EPOCHS).to_json()

    def test_different_churn_seed_differs(self, plain_model):
        a = FleetEngine("greedy", _churn(PLAIN_POOL), plain_model).run(EPOCHS)
        other = ChurnProcess(nf_names=PLAIN_POOL, seed=78, arrival_rate=2.0)
        b = FleetEngine("greedy", other, plain_model).run(EPOCHS)
        assert a.to_json() != b.to_json()


class TestBatchLoopEquivalence:
    @pytest.mark.parametrize("policy", ["greedy", "monopolization"])
    def test_batch_matches_looped_reference(self, plain_model, policy):
        batched = FleetEngine(
            policy, _churn(PLAIN_POOL), plain_model, score_mode="batch"
        ).run(EPOCHS)
        looped = FleetEngine(
            policy, _churn(PLAIN_POOL), plain_model, score_mode="loop"
        ).run(EPOCHS)
        assert batched.metrics == looped.metrics
        assert batched.migrations == looped.migrations
        assert _strip_mode(batched) == _strip_mode(looped)

    def test_batch_matches_loop_with_yala_policy(self, trained_model):
        batched = FleetEngine(
            "yala", _churn(TRAINED_POOL), trained_model, score_mode="batch"
        ).run(4)
        looped = FleetEngine(
            "yala", _churn(TRAINED_POOL), trained_model, score_mode="loop"
        ).run(4)
        assert _strip_mode(batched) == _strip_mode(looped)


class TestPolicySanity:
    def test_monopolization_never_violates(self, plain_model):
        report = FleetEngine(
            "monopolization", _churn(PLAIN_POOL), plain_model
        ).run(EPOCHS)
        assert all(m.sla_violations == 0 for m in report.metrics)
        assert report.violation_rate_pct == 0.0
        # One service per NIC throughout.
        assert all(m.nics_used == m.services for m in report.metrics)

    def test_yala_wastage_not_above_monopolization(self, trained_model):
        churn = _churn(TRAINED_POOL)
        mono = FleetEngine("monopolization", churn, trained_model).run(EPOCHS)
        yala = FleetEngine("yala", churn, trained_model).run(EPOCHS)
        assert yala.mean_wastage_pct <= mono.mean_wastage_pct
        assert yala.mean_nics <= mono.mean_nics

    def test_rebalance_migrations_logged_consistently(self, trained_model):
        report = FleetEngine("rebalance", _churn(TRAINED_POOL), trained_model).run(
            EPOCHS
        )
        assert len(report.migrations) == report.total_migrations
        for record in report.migrations:
            assert record.reason == "sla-violation"
            assert 0 <= record.epoch < EPOCHS


class TestReportAndRegistry:
    def test_report_renders(self, plain_model):
        report = FleetEngine("greedy", _churn(PLAIN_POOL), plain_model).run(3)
        text = report.render()
        assert "policy=greedy" in text
        assert "epoch" in text
        payload = json.loads(report.to_json())
        assert payload["policy"] == "greedy"
        assert len(payload["metrics"]) == 3

    def test_invalid_epochs_rejected(self, plain_model):
        with pytest.raises(ConfigurationError):
            FleetEngine("greedy", _churn(PLAIN_POOL), plain_model).run(0)

    def test_invalid_score_mode_rejected(self, plain_model):
        with pytest.raises(ConfigurationError):
            FleetEngine(
                "greedy", _churn(PLAIN_POOL), plain_model, score_mode="turbo"
            )

    def test_fleet_registered_in_experiment_runner(self):
        from repro.experiments.runner import CONTEXT_EXPERIMENTS, EXPERIMENTS

        assert "fleet" in EXPERIMENTS
        assert "fleet" in CONTEXT_EXPERIMENTS


class TestCli:
    def test_cli_deterministic_stdout(self, capsys):
        from repro.fleet.__main__ import main

        argv = [
            "--epochs", "3",
            "--policy", "greedy",
            "--arrival-rate", "1.0",
            "--initial-services", "3",
            "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["epochs"] == 3
        assert payload["policy"] == "greedy"
