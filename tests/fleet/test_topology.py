"""Tests for the pod/rack topology layer.

Covers the PR's topology contract: pod membership is a pure function
of the NIC id (round-robin for ``pods=N``, sequential fill for
``pod_size=K``, flat default), pod seeds are derived per pod (never
per worker), cross-pod moves carry their own timed-migration duration,
and the rebalance policy's pod-local preference strictly reduces
cross-pod migrations on a churn-heavy workload.
"""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess, ServiceRequest
from repro.fleet.cluster import Cluster, ServiceInstance
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import DiagnosisRebalancePolicy, PlacementModel
from repro.fleet.topology import Topology
from repro.fleet.traces import make_trace
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile

TRAINED_POOL = ("flowmonitor", "flowstats", "nids")


class TestValidation:
    def test_pods_and_pod_size_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            Topology(pods=2, pod_size=4)

    @pytest.mark.parametrize("kwargs", [
        {"pods": 0},
        {"pod_size": 0},
        {"pods_per_rack": 0},
    ])
    def test_bounds(self, kwargs):
        with pytest.raises(ConfigurationError):
            Topology(**kwargs)

    def test_negative_ids_rejected(self):
        topo = Topology(pods=2)
        with pytest.raises(ConfigurationError):
            topo.pod_of(-1)
        with pytest.raises(ConfigurationError):
            topo.rack_of(-1)


class TestLayout:
    def test_flat_default(self):
        topo = Topology()
        assert topo.is_flat
        assert Topology.flat() == topo
        assert [topo.pod_of(i) for i in range(7)] == [0] * 7
        assert topo.describe() == "flat"

    def test_round_robin_pods(self):
        topo = Topology(pods=3)
        assert [topo.pod_of(i) for i in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        assert topo.describe() == "pods=3"

    def test_sequential_fill_pod_size(self):
        topo = Topology(pod_size=4)
        assert [topo.pod_of(i) for i in range(9)] == [0, 0, 0, 0, 1, 1, 1, 1, 2]
        assert topo.describe() == "pod-size=4"

    def test_racks_group_consecutive_pods(self):
        topo = Topology(pods=20, pods_per_rack=8)
        assert topo.rack_of(0) == 0
        assert topo.rack_of(7) == 0
        assert topo.rack_of(8) == 1
        assert topo.rack_of(19) == 2

    def test_is_cross_pod(self):
        topo = Topology(pods=2)
        assert not topo.is_cross_pod(0, 2)
        assert topo.is_cross_pod(0, 1)

    def test_to_dict_round_trips_the_layout(self):
        topo = Topology(pod_size=5)
        assert topo.to_dict() == {
            "pods": None,
            "pod_size": 5,
            "pods_per_rack": 8,
        }
        assert Topology(**topo.to_dict()) == topo


class TestPodSeeds:
    def test_deterministic_and_distinct_per_pod(self):
        topo = Topology(pods=4)
        seeds = [topo.pod_seed(2025, pod) for pod in range(4)]
        assert seeds == [topo.pod_seed(2025, pod) for pod in range(4)]
        assert len(set(seeds)) == 4

    def test_keyed_to_pod_not_layout(self):
        # The derivation depends only on (seed, pod_id): two layouts
        # agree wherever their pod ids coincide, so re-partitioning a
        # fleet never perturbs the streams of unchanged pods.
        assert Topology(pods=2).pod_seed(7, 1) == Topology(pod_size=3).pod_seed(7, 1)


def _instance(n: int) -> ServiceInstance:
    request = ServiceRequest(
        instance_id=f"svc-0-{n}",
        nf_name="acl",
        sla_drop_fraction=0.1,
        trace=make_trace("static", seed=n),
        arrival_epoch=0,
        departure_epoch=10,
    )
    return ServiceInstance(request=request, traffic=TrafficProfile())


class TestPartition:
    def test_groups_by_pod_in_ascending_order(self):
        cluster = Cluster(bluefield2_spec(), topology=Topology(pods=2))
        first = cluster.place(_instance(0))
        cluster.place(_instance(1))
        cluster.place(_instance(2), first)
        parts = cluster.topology.partition(cluster.nics)
        assert [pod for pod, _ in parts] == [0, 1]
        assert [[n.nic_id for n in nics] for _, nics in parts] == [[0], [1]]

    def test_cluster_pod_of_delegates(self):
        cluster = Cluster(bluefield2_spec(), topology=Topology(pods=3))
        assert cluster.pod_of(5) == 2


class TestCrossPodMigrationCost:
    def _cluster(self) -> Cluster:
        cluster = Cluster(bluefield2_spec(), topology=Topology(pods=2))
        cluster.migration_duration = 0.2
        cluster.cross_pod_migration_duration = 0.7
        for n in range(3):
            cluster.place(_instance(n))  # NICs 0, 1, 2 (pods 0, 1, 0)
        return cluster

    def test_cross_pod_move_takes_longer(self):
        cluster = self._cluster()
        cluster.migrate("svc-0-0", 1, epoch=0)  # pod 0 -> pod 1
        record = cluster.migration_of("svc-0-0")
        assert record is not None and record.duration == pytest.approx(0.7)

    def test_pod_local_move_keeps_base_duration(self):
        cluster = self._cluster()
        cluster.migrate("svc-0-0", 2, epoch=0)  # pod 0 -> pod 0
        record = cluster.migration_of("svc-0-0")
        assert record is not None and record.duration == pytest.approx(0.2)

    def test_fresh_nic_destination_uses_its_predetermined_id(self):
        cluster = self._cluster()
        # The next NIC id is 3 -> pod 1: a None destination is cross-pod.
        cluster.migrate("svc-0-0", None, epoch=0)
        record = cluster.migration_of("svc-0-0")
        assert record is not None and record.duration == pytest.approx(0.7)

    def test_unset_means_no_distinction(self):
        cluster = self._cluster()
        cluster.cross_pod_migration_duration = None
        cluster.migrate("svc-0-0", 1, epoch=0)
        record = cluster.migration_of("svc-0-0")
        assert record is not None and record.duration == pytest.approx(0.2)


class _PermissiveModel(PlacementModel):
    """Admit pairs everywhere so migrations always have candidates.

    Under the real trained model yala's feasibility check vetoes almost
    every candidate NIC (migrations fall through to a fresh NIC), which
    hides the candidate *ordering* this test is about. Capping
    feasibility at two residents keeps the fleet dense in half-full
    NICs: every violator has same-pod and cross-pod candidates, so the
    preference tier in the sort is what decides.
    """

    def predicted_feasible_yala(self, residents, target, capacity=1.0):
        return len(residents) <= 2


class TestPodLocalPreference:
    def test_strictly_fewer_cross_pod_migrations(self, small_system):
        """The preference is the point of topology-aware placement."""
        model = _PermissiveModel(yala=small_system)
        topo = Topology(pods=2)
        counts = {}
        for pref in (True, False):
            churn = ChurnProcess(
                nf_names=TRAINED_POOL,
                seed=77,
                arrival_rate=6.0,
                mean_lifetime=10.0,
                initial_services=8,
                sla_range=(0.01, 0.05),
            )
            policy = DiagnosisRebalancePolicy(
                max_migrations_per_epoch=8, pod_local_preference=pref
            )
            report = FleetEngine(policy, churn, model, topology=topo).run(10)
            counts[pref] = topo.cross_pod_migrations(report.migrations)
        assert counts[True] < counts[False]

    def test_preference_is_inert_on_flat_topology(self, small_system):
        model = PlacementModel(yala=small_system)
        reports = []
        for pref in (True, False):
            churn = ChurnProcess(
                nf_names=TRAINED_POOL, seed=77, arrival_rate=2.0
            )
            policy = DiagnosisRebalancePolicy(pod_local_preference=pref)
            reports.append(FleetEngine(policy, churn, model).run(5).to_json())
        assert reports[0] == reports[1]
