"""Tests for seeded failure injection and self-healing placement.

The fault layer's contract is the same one every other fleet stream
obeys: **pure in (seed, entity)**. The hypothesis properties pin that
a schedule is a function — same seed, same trajectory, one fault per
NIC ordinal, restores strictly after their faults — and the
integration tests pin that injecting faults keeps the byte-identity
contract across engines and that the report's ``faults`` section
accounts for every eviction. The pinned policy test captures the
headline robustness result: a pod outage *flips* the yala-vs-rebalance
ranking, because diagnosis-driven rebalancing pays off differently
when the fleet is healing than when it is healthy.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fleet import (
    EpochFaultDriver,
    FaultConfig,
    FaultSchedule,
    FleetConfig,
    build_model,
    faults_payload,
    simulate,
)

_seeds = st.integers(min_value=0, max_value=2**32 - 1)
_rates = st.floats(min_value=0.05, max_value=0.5)


def _schedule(seed, fail=0.4, degrade=0.3, outage=0.5):
    return FaultSchedule(
        FaultConfig(
            nic_fail_rate=fail,
            nic_degrade_rate=degrade,
            pod_outage_rate=outage,
            mean_time_to_fail=3.0,
            mean_repair_time=2.0,
        ),
        seed=seed,
    )


class TestFaultConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"nic_fail_rate": -0.1},
        {"nic_fail_rate": 1.1},
        {"nic_fail_rate": 0.7, "nic_degrade_rate": 0.4},
        {"mean_time_to_fail": 0.0},
        {"mean_repair_time": -1.0},
        {"degraded_capacity_range": (0.0, 0.5)},
        {"degraded_capacity_range": (0.8, 0.3)},
        {"degraded_capacity_range": (0.5, 1.0)},
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(**kwargs)

    def test_any_faults(self):
        assert not FaultConfig().any_faults
        assert FaultConfig(nic_fail_rate=0.1).any_faults
        assert FaultConfig(pod_outage_rate=0.1).any_faults

    def test_epoch_driver_rejects_unaligned(self):
        schedule = FaultSchedule(
            FaultConfig(nic_fail_rate=0.5, align_to_epochs=False), seed=1
        )
        with pytest.raises(ConfigurationError, match="align"):
            EpochFaultDriver(schedule)


class TestScheduleProperties:
    @given(seed=_seeds, fail=_rates, degrade=_rates)
    @settings(max_examples=50, deadline=None)
    def test_same_seed_identical_schedule(self, seed, fail, degrade):
        a = _schedule(seed, fail=fail, degrade=degrade)
        b = _schedule(seed, fail=fail, degrade=degrade)
        assert [a.nic_fault(i) for i in range(16)] == [
            b.nic_fault(i) for i in range(16)
        ]
        assert [a.pod_outage(i) for i in range(8)] == [
            b.pod_outage(i) for i in range(8)
        ]

    @given(seed=_seeds)
    @settings(max_examples=50, deadline=None)
    def test_pure_in_query_order(self, seed):
        forward = [_schedule(seed).nic_fault(i) for i in range(12)]
        backward = [
            _schedule(seed).nic_fault(i) for i in reversed(range(12))
        ]
        assert forward == list(reversed(backward))

    @given(seed=_seeds)
    @settings(max_examples=50, deadline=None)
    def test_one_fault_per_ordinal_never_retargeted(self, seed):
        # A NIC's fate is drawn exactly once: re-asking can never
        # produce a second fault for an already-failed ordinal.
        schedule = _schedule(seed)
        first = {i: schedule.nic_fault(i) for i in range(12)}
        for _ in range(3):
            for i in range(12):
                assert schedule.nic_fault(i) == first[i]

    @given(seed=_seeds)
    @settings(max_examples=100, deadline=None)
    def test_restores_strictly_after_failures(self, seed):
        schedule = _schedule(seed)
        for i in range(16):
            fault = schedule.nic_fault(i)
            if fault is None:
                continue
            assert fault.after >= 1.0  # aligned: on-grid, never epoch 0
            assert fault.after == float(int(fault.after))
            assert fault.repair >= 1.0
            if fault.mode == "degrade":
                # Restore lands strictly after the degradation.
                assert fault.after + fault.repair > fault.after
                assert 0.0 < fault.capacity < 1.0
            else:
                assert fault.mode == "fail"
                assert fault.capacity == 1.0
        for i in range(8):
            outage = schedule.pod_outage(i)
            if outage is None:
                continue
            assert outage.start >= 1.0
            assert outage.duration >= 1.0
            assert outage.end > outage.start

    @given(seed=_seeds)
    @settings(max_examples=25, deadline=None)
    def test_zero_rates_draw_nothing(self, seed):
        schedule = FaultSchedule(FaultConfig(), seed=seed)
        assert all(schedule.nic_fault(i) is None for i in range(8))
        assert all(schedule.pod_outage(i) is None for i in range(8))


class TestFaultsPayload:
    def test_empty_payload_shape(self):
        payload = faults_payload()
        assert payload["nic_failures"] == 0
        assert payload["services_evicted"] == 0
        assert payload["replacements"] == []
        assert json.loads(json.dumps(payload)) == payload


class TestFaultInjectionEndToEnd:
    BASE = dict(
        policy="greedy", epochs=8, quota=40, initial_services=4,
        nic_fail_rate=0.4, nic_degrade_rate=0.3, mean_time_to_fail=2.0,
        mean_repair_time=2.0,
    )

    @pytest.fixture(scope="class")
    def model(self):
        config = FleetConfig(**self.BASE)
        return build_model(
            config.policy, config.nf_pool, config.seed, config.quota, 1
        )

    def test_same_seed_same_bytes(self, model):
        config = FleetConfig(**self.BASE)
        assert (
            simulate(config, model=model).to_json()
            == simulate(config, model=model).to_json()
        )

    def test_faults_section_accounts_evictions(self, model):
        payload = json.loads(
            simulate(FleetConfig(**self.BASE), model=model).to_json()
        )
        faults = payload["faults"]
        assert faults["nic_failures"] + faults["nic_degradations"] > 0
        # Every eviction is resolved (replaced / lost) or still queued
        # at the horizon — never double-counted.
        assert faults["services_evicted"] >= (
            faults["services_lost"] + faults["services_replaced"]
        )
        assert len(faults["replacements"]) == faults["services_replaced"]
        for record in faults["replacements"]:
            assert record["replaced_at"] >= record["evicted_at"]

    def test_fault_free_rates_reproduce_v2_bytes(self, model):
        # Zero rates must not perturb a single byte of the fault-free
        # report other than the (versioned) faults section itself.
        free = dict(self.BASE)
        for key in ("nic_fail_rate", "nic_degrade_rate",
                    "mean_time_to_fail", "mean_repair_time"):
            free.pop(key)
        with_knobs = dict(
            self.BASE, nic_fail_rate=0.0, nic_degrade_rate=0.0
        )
        assert (
            simulate(FleetConfig(**free), model=model).to_json()
            == simulate(FleetConfig(**with_knobs), model=model).to_json()
        )

    def test_epoch_event_parity_with_faults(self, model):
        epoch = simulate(FleetConfig(engine="epoch", **self.BASE),
                         model=model)
        event = simulate(
            FleetConfig(engine="event", quantize_arrivals=True,
                        **self.BASE),
            model=model,
        )
        epoch_payload = json.loads(epoch.to_json())
        fleet_section = json.loads(event.to_json())["fleet"]
        assert json.dumps(epoch_payload, sort_keys=True) == json.dumps(
            fleet_section, sort_keys=True
        )

    def test_pod_outage_parity_and_accounting(self, model):
        base = dict(self.BASE, pods=2, pod_outage_rate=0.9)
        epoch = simulate(FleetConfig(engine="epoch", **base), model=model)
        event = simulate(
            FleetConfig(engine="event", quantize_arrivals=True, **base),
            model=model,
        )
        payload = json.loads(epoch.to_json())
        assert payload["faults"]["pod_outages"] > 0
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            json.loads(event.to_json())["fleet"], sort_keys=True
        )

    def test_pod_outage_requires_fixed_pods(self):
        with pytest.raises(ConfigurationError, match="pod"):
            FleetConfig(policy="greedy", pod_outage_rate=0.5)


class TestOutageFlipsPolicyRanking:
    """Pinned robustness result: a pod outage inverts the ranking.

    Fault-free at this seed, diagnosis-driven rebalancing beats static
    yala placement (fewer violation-epochs). Under a pod outage the
    ranking *flips*: rebalance churns services across the shrunken
    fleet while the outage holds, yala's conservative placements ride
    it out. Values are pinned — a byte-level change to either engine
    or the fault layer must be a conscious schema/trajectory decision.
    """

    BASE = dict(
        epochs=12, quota=60, seed=2048, initial_services=8,
        arrival_rate=2.5, pods=2,
    )

    @pytest.fixture(scope="class")
    def model(self):
        return build_model(
            "yala", ("flowmonitor", "flowstats", "nids"), 2048, 60, 1
        )

    @staticmethod
    def _violations(config, model):
        payload = json.loads(simulate(config, model=model).to_json())
        return sum(e["sla_violations"] for e in payload["metrics"])

    def test_ranking_flips_under_outage(self, model):
        fault_free = {
            policy: self._violations(
                FleetConfig(policy=policy, **self.BASE), model
            )
            for policy in ("yala", "rebalance")
        }
        outage = {
            policy: self._violations(
                FleetConfig(policy=policy, pod_outage_rate=0.9,
                            **self.BASE),
                model,
            )
            for policy in ("yala", "rebalance")
        }
        # Pinned values (seed 2048): healthy fleet favours rebalance,
        # healing fleet favours yala.
        assert fault_free == {"yala": 3, "rebalance": 2}
        assert outage == {"yala": 2, "rebalance": 3}
        assert fault_free["rebalance"] < fault_free["yala"]
        assert outage["yala"] < outage["rebalance"]
