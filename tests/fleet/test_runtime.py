"""Tests for the execution-runtime layer (serial vs process).

The central contract: the runtime decides *where* epoch scoring
executes, never *what* it computes — same seed => byte-identical
reports at any runtime/worker count, on both engines, on heterogeneous
fleets, under pod topologies. Serial is the oracle arm; the process
runtime's inline-fallback threshold is size-only (deterministic), so
small batches exercise the same pure functions either way.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess
from repro.fleet.engine import EventEngine, FleetEngine
from repro.fleet.events import EventConfig
from repro.fleet.policies import PlacementModel
from repro.fleet.runtime import (
    RUNTIME_NAMES,
    ProcessRuntime,
    SerialRuntime,
    _chunk,
    make_runtime,
)
from repro.fleet.topology import Topology
from repro.profiling.collector import ProfilingCollector

PLAIN_POOL = ("flowstats", "nat", "acl")
EPOCHS = 5


def _churn(rate=2.5):
    return ChurnProcess(
        nf_names=PLAIN_POOL,
        seed=77,
        arrival_rate=rate,
        mean_lifetime=8.0,
        initial_services=5,
    )


@pytest.fixture(scope="module")
def plain_model(noisy_nic):
    return PlacementModel(collector=ProfilingCollector(noisy_nic), nic=noisy_nic)


class TestMakeRuntime:
    def test_none_is_serial(self):
        assert isinstance(make_runtime(None), SerialRuntime)

    def test_names_resolve(self):
        assert isinstance(make_runtime("serial"), SerialRuntime)
        runtime = make_runtime("process", jobs=3)
        assert isinstance(runtime, ProcessRuntime)
        assert runtime.jobs == 3

    def test_instance_passes_through(self):
        runtime = SerialRuntime()
        assert make_runtime(runtime) is runtime

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_runtime("threads")

    def test_names_constant(self):
        assert RUNTIME_NAMES == ("serial", "process")


class TestProcessRuntimeConstruction:
    def test_workers_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="jobs"):
            runtime = ProcessRuntime(workers=2)
        assert runtime.jobs == 2

    def test_jobs_wins_over_alias(self):
        with pytest.warns(DeprecationWarning):
            assert ProcessRuntime(jobs=4, workers=2).jobs == 4

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            ProcessRuntime(jobs=0)
        with pytest.raises(ConfigurationError):
            ProcessRuntime(jobs=2, min_parallel_items=0)

    def test_context_manager_closes(self, plain_model):
        with ProcessRuntime(jobs=2) as runtime:
            report = FleetEngine(
                "greedy", _churn(), plain_model, runtime=runtime
            ).run(2)
        assert report.metrics  # ran; pool (if any) is closed on exit


class TestChunk:
    def test_contiguous_cover_near_equal(self):
        items = list(range(10))
        chunks = _chunk(items, 4)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]
        assert [x for chunk in chunks for x in chunk] == items

    def test_more_parts_than_items(self):
        assert _chunk([1, 2], 8) == [[1], [2]]

    def test_deterministic(self):
        assert _chunk(list(range(7)), 3) == _chunk(list(range(7)), 3)


class TestByteIdentity:
    """Same seed => byte-identical reports at any runtime/jobs."""

    @pytest.fixture(scope="class")
    def serial_report(self, plain_model):
        return FleetEngine(
            "greedy", _churn(), plain_model, topology=Topology(pods=2)
        ).run(EPOCHS)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_epoch_engine(self, plain_model, serial_report, jobs):
        # min_parallel_items=1 forces the pool path even on this small
        # fleet, so worker-side solving is what's being compared.
        runtime = ProcessRuntime(jobs=jobs, min_parallel_items=1)
        try:
            report = FleetEngine(
                "greedy",
                _churn(),
                plain_model,
                runtime=runtime,
                topology=Topology(pods=2),
            ).run(EPOCHS)
        finally:
            runtime.close()
        assert report.to_json() == serial_report.to_json()

    def test_inline_fallback_identical(self, plain_model, serial_report):
        # Default threshold: this small fleet solves inline — still the
        # same bytes (the fallback is size-only, numerically inert).
        runtime = ProcessRuntime(jobs=2)
        try:
            report = FleetEngine(
                "greedy",
                _churn(),
                plain_model,
                runtime=runtime,
                topology=Topology(pods=2),
            ).run(EPOCHS)
        finally:
            runtime.close()
        assert report.to_json() == serial_report.to_json()

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_event_engine(self, plain_model, jobs):
        def build(runtime):
            return EventEngine(
                "greedy",
                _churn(),
                plain_model,
                config=EventConfig(migration_duration=0.25),
                runtime=runtime,
                topology=Topology(pod_size=2),
            ).run(4)

        serial = build(SerialRuntime())
        runtime = ProcessRuntime(jobs=jobs, min_parallel_items=1)
        try:
            process = build(runtime)
        finally:
            runtime.close()
        assert process.to_json() == serial.to_json()

    def test_hetero_fleet(self, plain_model):
        # Heterogeneous pools route per-target batches through the
        # runtime; byte-identity must survive the extra dimension.
        from repro.fleet.cluster import NicProvisioner
        from repro.nic.nic import SmartNic
        from repro.nic.spec import get_spec, target_seed

        mix = {"bluefield2": 0.6, "pensando": 0.4}
        provisioner = NicProvisioner(mix, seed=5)
        nics = {
            name: SmartNic(get_spec(name), seed=target_seed(11, name))
            for name in mix
        }
        model = PlacementModel(
            collector=ProfilingCollector(nics["bluefield2"]),
            nic=nics["bluefield2"],
        )
        model.add_target(
            collector=ProfilingCollector(nics["pensando"]),
            nic=nics["pensando"],
        )

        def build(runtime):
            return FleetEngine(
                "greedy",
                _churn(rate=3.0),
                model,
                provisioner=provisioner,
                runtime=runtime,
                topology=Topology(pods=3),
            ).run(EPOCHS)

        serial = build(SerialRuntime())
        runtime = ProcessRuntime(jobs=2, min_parallel_items=1)
        try:
            process = build(runtime)
        finally:
            runtime.close()
        assert process.to_json() == serial.to_json()

    def test_report_never_names_the_runtime(self, plain_model, serial_report):
        # Where scoring ran must not leak into the report, or the
        # byte-identity contract could not hold.
        payload = json.loads(serial_report.to_json())
        assert "runtime" not in payload
        assert "jobs" not in payload
