"""Tests for the telemetry subsystem (:mod:`repro.obs`).

The headline contract, pinned here: **telemetry never perturbs
results**. Attaching any recorder leaves the report byte-identical;
everything keyed by simulated time is itself byte-deterministic at any
``--runtime``/``--jobs`` setting, and the ``sim`` channel agrees
byte-for-byte between the epoch and event engines under the
epoch-equivalence contract. Wall-clock timings live in a separated
``timing`` channel that makes no determinism promises, exports as a
Chrome trace-event timeline (pods as tracks), and is excluded from
every parity assertion.
"""

import json

import pytest

from repro.fleet import __main__ as fleet_cli
from repro.fleet import (
    Checkpointer,
    FleetConfig,
    build_model_for,
    simulate,
)
from repro.obs import (
    DETERMINISTIC_CHANNELS,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    active_recorder,
    chrome_trace_payload,
    set_active_recorder,
    use_recorder,
)

BASE = dict(
    policy="greedy", epochs=4, quota=10, seed=7,
    initial_services=4, arrival_rate=1.5,
)
FAULTY = dict(
    BASE, seed=1, pods=4, nic_fail_rate=0.5, nic_degrade_rate=0.3,
    pod_outage_rate=0.4, mean_time_to_fail=3.0,
)


@pytest.fixture(scope="module")
def model():
    return build_model_for(FleetConfig(**BASE))


# ----------------------------------------------------------------------
# Recorder protocol
# ----------------------------------------------------------------------
class TestRecorderApi:
    def test_null_recorder_is_inert(self):
        rec = NullRecorder()
        assert not rec.enabled
        rec.event(1.0, "x", chan="sim", a=1)
        rec.counter("c")
        rec.gauge("g", 2.0)
        rec.histogram("h", 3)
        rec.exec_counter("ec")
        with rec.span(0.0, "s") as span:
            span.add(b=2)
        with rec.wall_span("w"):
            pass

    def test_trace_recorder_collects(self):
        rec = TraceRecorder()
        assert rec.enabled
        rec.event(2.0, "arrive", chan="sim", service=3)
        rec.event(2.0, "pop", detail="x")  # engine channel default
        rec.counter("events")
        rec.histogram("iters", 25)
        assert [r["name"] for r in rec.deterministic_records()] == [
            "arrive", "pop",
        ]
        assert [r["name"] for r in rec.deterministic_records("sim")] == [
            "arrive",
        ]
        assert rec.counters["events"] == 1
        assert rec.histograms["iters"]["count"] == 1

    def test_unknown_channel_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError, match="chan"):
            rec.event(0.0, "x", chan="wall")
        assert DETERMINISTIC_CHANNELS == ("sim", "engine")

    def test_jsonl_has_no_sequence_numbers(self):
        # No per-record sequence field: a resumed run's stream can be a
        # byte-exact suffix of the full run's (pinned below).
        rec = TraceRecorder()
        rec.event(1.0, "a", chan="sim", k=1)
        rec.event(2.0, "b", chan="sim")
        lines = rec.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert set(record) >= {"chan", "t", "name"}
            assert "seq" not in record

    def test_span_records_fields_at_exit(self):
        rec = TraceRecorder()
        with rec.span(3.0, "phase.score", chan="engine", pods=2) as span:
            span.add(mixes=5)
        (record,) = rec.deterministic_records()
        assert record == {
            "chan": "engine", "t": 3.0, "name": "phase.score",
            "pods": 2, "mixes": 5,
        }
        (timing,) = rec.timings
        assert timing["name"] == "phase.score"
        assert timing["args"]["sim_time"] == 3.0

    def test_active_recorder_scoping(self):
        assert active_recorder() is NULL_RECORDER
        rec = TraceRecorder()
        with use_recorder(rec):
            assert active_recorder() is rec
        assert active_recorder() is NULL_RECORDER
        previous = set_active_recorder(rec)
        assert previous is NULL_RECORDER
        set_active_recorder(previous)

    def test_metrics_payload_shape(self):
        rec = TraceRecorder()
        rec.counter("a")
        rec.exec_histogram("h", 4)
        payload = rec.metrics_payload()
        assert set(payload) == {"deterministic", "exec", "timing"}
        assert payload["deterministic"]["counters"] == {"a": 1}
        assert payload["exec"]["histograms"]["h"]["count"] == 1


# ----------------------------------------------------------------------
# The hard contract: telemetry never perturbs results
# ----------------------------------------------------------------------
class TestReportUnperturbed:
    @pytest.mark.parametrize("engine,extra", [
        ("epoch", {}),
        ("event", {"quantize_arrivals": True}),
    ])
    def test_report_bytes_identical_with_recorder(self, model, engine,
                                                  extra):
        config = FleetConfig(engine=engine, **{**FAULTY, **extra})
        bare = simulate(config, model=model)
        recorded = simulate(config, model=model, recorder=TraceRecorder())
        nulled = simulate(config, model=model, recorder=NullRecorder())
        assert recorded.to_json() == bare.to_json()
        assert nulled.to_json() == bare.to_json()


class TestDeterministicStream:
    def test_identical_across_runtimes_and_jobs(self, model):
        streams = {}
        for runtime, jobs in [
            ("serial", 1), ("process", 1), ("process", 2), ("process", 4),
        ]:
            rec = TraceRecorder()
            simulate(
                FleetConfig(runtime=runtime, jobs=jobs, **FAULTY),
                model=model, recorder=rec,
            )
            streams[(runtime, jobs)] = rec.to_jsonl()
        reference = streams[("serial", 1)]
        assert reference  # the stream is non-trivial
        for key, stream in streams.items():
            assert stream == reference, f"{key} diverged from serial"

    def test_sim_channel_identical_across_engines(self, model):
        # Under the epoch-equivalence contract the continuous-time
        # engine replays the epoch engine's trajectory — and its sim
        # channel — byte-for-byte, faults included.
        epoch_rec, event_rec = TraceRecorder(), TraceRecorder()
        simulate(FleetConfig(**FAULTY), model=model, recorder=epoch_rec)
        simulate(
            FleetConfig(engine="event", quantize_arrivals=True, **FAULTY),
            model=model, recorder=event_rec,
        )
        sim_epoch = epoch_rec.to_jsonl(chan="sim")
        assert sim_epoch
        assert "fault." in sim_epoch  # the faulted config actually faults
        assert sim_epoch == event_rec.to_jsonl(chan="sim")

    def test_repeat_run_stream_identical(self, model):
        first, second = TraceRecorder(), TraceRecorder()
        simulate(FleetConfig(**BASE), model=model, recorder=first)
        simulate(FleetConfig(**BASE), model=model, recorder=second)
        assert first.to_jsonl() == second.to_jsonl()


class TestResumeStreamSuffix:
    def test_resumed_trace_is_byte_exact_suffix(self, tmp_path, model):
        """A resumed run's stream is the tail of the full run's.

        Snapshot at epoch k, resume, record: the resumed stream equals
        the full run's records at ``t >= k``, and prefix + resumed
        stream byte-equals the full stream — telemetry survives a kill
        the same way the report does.
        """
        config = FleetConfig(**FAULTY)
        full_rec = TraceRecorder()
        full = simulate(config, model=model, recorder=full_rec)

        snap = str(tmp_path / "snap.pkl")
        simulate(
            FleetConfig(checkpoint_path=snap, checkpoint_every=3, **FAULTY),
            model=model,
        )
        resumed_rec = TraceRecorder()
        resumed = simulate(
            FleetConfig(resume_path=snap, **FAULTY),
            model=model, recorder=resumed_rec,
        )
        assert resumed.to_json() == full.to_json()

        step = 3  # checkpoint_every=3 over 4 epochs: a mid-run snapshot
        lines = full_rec.to_jsonl().splitlines(keepends=True)
        records = full_rec.deterministic_records()
        prefix = "".join(
            line for line, record in zip(lines, records)
            if record["t"] < step
        )
        suffix = "".join(
            line for line, record in zip(lines, records)
            if record["t"] >= step
        )
        assert resumed_rec.to_jsonl()  # the replayed tail is non-trivial
        assert resumed_rec.to_jsonl() == suffix
        assert prefix + resumed_rec.to_jsonl() == full_rec.to_jsonl()


# ----------------------------------------------------------------------
# Report telemetry section
# ----------------------------------------------------------------------
class TestReportTelemetry:
    def test_solver_and_scoring_totals(self, model):
        report = simulate(FleetConfig(**BASE), model=model)
        telemetry = report.payload()["telemetry"]
        solver = telemetry["solver"]
        assert solver["scenarios_solved"] > 0
        assert solver["iterations_total"] >= solver["scenarios_solved"]
        assert solver["max_iterations"] >= 1
        assert sum(row["iterations"] for row in solver["per_epoch"]) == \
            solver["iterations_total"]
        scoring = telemetry["scoring"]
        assert scoring["mixes_solved"] == solver["scenarios_solved"]
        assert sum(row["tasks"] for row in scoring["pod_tasks"]) > 0

    def test_residuals_present_for_trained_policies(self):
        config = FleetConfig(
            policy="yala", epochs=3, quota=25, seed=3,
            initial_services=3, arrival_rate=1.0,
        )
        report = simulate(config)
        residuals = report.payload()["telemetry"]["residuals"]
        assert residuals, "yala runs must score prediction residuals"
        for row in residuals:
            assert set(row) == {
                "predictor", "count", "mean_error", "mean_abs_error",
                "max_abs_error",
            }
            assert row["count"] > 0
            assert row["max_abs_error"] >= abs(row["mean_error"]) - 1e-12

    def test_greedy_has_no_residuals(self, model):
        report = simulate(FleetConfig(**BASE), model=model)
        assert report.payload()["telemetry"]["residuals"] == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_faulted_pod_run_trace_shape(self, model):
        rec = TraceRecorder()
        simulate(
            FleetConfig(**dict(FAULTY, pods=16)),
            model=model, recorder=rec,
        )
        payload = chrome_trace_payload(rec)
        events = payload["traceEvents"]
        assert events
        assert {event["ph"] for event in events} <= {"M", "X"}
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert isinstance(event["args"], dict)
        thread_names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert "engine" in thread_names
        assert any(name.startswith("pod ") for name in thread_names)
        # The whole payload is valid trace-event JSON.
        json.loads(json.dumps(payload))


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliTelemetry:
    CLI = [
        "--policy", "greedy", "--epochs", "3", "--quota", "10",
        "--seed", "7", "--format", "json",
    ]

    def test_trace_and_metrics_files_written(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.json")
        argv = list(self.CLI) + [
            "--trace-out", trace, "--metrics-out", metrics,
        ]
        assert fleet_cli.main(argv) == 0
        captured = capsys.readouterr()
        for line in captured.err.splitlines():
            assert line.startswith("# ")
        with open(trace) as handle:
            for line in handle:
                json.loads(line)
        with open(metrics) as handle:
            snapshot = json.load(handle)
        assert set(snapshot) == {"deterministic", "exec", "timing"}

    def test_trace_never_changes_stdout(self, tmp_path, capsys):
        assert fleet_cli.main(list(self.CLI)) == 0
        bare = capsys.readouterr().out
        argv = list(self.CLI) + [
            "--trace-out", str(tmp_path / "t.json"),
            "--trace-format", "chrome",
        ]
        assert fleet_cli.main(argv) == 0
        assert capsys.readouterr().out == bare

    def test_chrome_format_writes_trace_events(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        argv = list(self.CLI) + [
            "--trace-out", trace, "--trace-format", "chrome",
        ]
        assert fleet_cli.main(argv) == 0
        capsys.readouterr()
        with open(trace) as handle:
            assert "traceEvents" in json.load(handle)


class TestWorkersDeprecation:
    def test_workers_flag_parses_warns_and_maps_to_jobs(self):
        parser = fleet_cli.build_parser()
        args = parser.parse_args(["--workers", "3"])
        assert args.workers == 3
        assert args.jobs == 1  # untouched default
        with pytest.warns(DeprecationWarning, match="--jobs"):
            config = FleetConfig.from_cli_args(args)
        assert config.jobs == 3

    def test_jobs_flag_warns_nothing(self, recwarn):
        parser = fleet_cli.build_parser()
        config = FleetConfig.from_cli_args(parser.parse_args(["--jobs", "2"]))
        assert config.jobs == 2
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]
