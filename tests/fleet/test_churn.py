"""Tests for the arrival/departure churn process."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess, ServiceRequest
from repro.fleet.traces import make_trace

POOL = ("flowstats", "nids", "acl")


class TestChurnSchedule:
    def test_deterministic_per_epoch(self):
        a = ChurnProcess(POOL, seed=3, arrival_rate=2.0)
        b = ChurnProcess(POOL, seed=3, arrival_rate=2.0)
        for epoch in range(6):
            assert a.arrivals_for(epoch) == b.arrivals_for(epoch)

    def test_pure_in_call_order(self):
        churn = ChurnProcess(POOL, seed=3, arrival_rate=2.0)
        later = churn.arrivals_for(4)
        churn.arrivals_for(0)  # interleaved call must not disturb epoch 4
        assert churn.arrivals_for(4) == later

    def test_epoch_zero_seeds_initial_population(self):
        churn = ChurnProcess(POOL, seed=3, arrival_rate=0.0, initial_services=5)
        assert len(churn.arrivals_for(0)) == 5
        assert len(churn.arrivals_for(1)) == 0

    def test_marks_within_configured_ranges(self):
        churn = ChurnProcess(
            POOL, seed=9, arrival_rate=3.0, sla_range=(0.08, 0.15)
        )
        seen = 0
        for epoch in range(10):
            for request in churn.arrivals_for(epoch):
                seen += 1
                assert request.nf_name in POOL
                assert 0.08 <= request.sla_drop_fraction <= 0.15
                assert request.departure_epoch > request.arrival_epoch
                assert request.trace.kind in (
                    "static",
                    "diurnal",
                    "burst",
                    "flash_crowd",
                    "random_walk",
                )
        assert seen > 0

    def test_instance_ids_unique(self):
        churn = ChurnProcess(POOL, seed=9, arrival_rate=3.0)
        ids = [
            request.instance_id
            for epoch in range(8)
            for request in churn.arrivals_for(epoch)
        ]
        assert len(ids) == len(set(ids))


class TestValidation:
    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnProcess((), seed=1)

    def test_bad_sla_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnProcess(POOL, seed=1, sla_range=(0.2, 0.1))

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnProcess(POOL, seed=1, arrival_rate=-1.0)

    def test_request_validates_lifetime(self):
        with pytest.raises(ConfigurationError):
            ServiceRequest(
                instance_id="svc-0-0",
                nf_name="acl",
                sla_drop_fraction=0.1,
                trace=make_trace("static", seed=1),
                arrival_epoch=3,
                departure_epoch=3,
            )
