"""Tests for the continuous-time event engine.

The central contract: under :meth:`EventConfig.epoch_equivalent` the
event engine reproduces the epoch engine's reports **byte-identically**
(JSON and rendered text) for every policy, including migration-active
rebalancing and heterogeneous fleets. On top of that sit the
continuous-time semantics the epoch clock cannot express — sub-epoch
arrivals, timed migrations with dual-NIC contention, NIC spin-up — and
the acceptance scenario where migration cost flips a policy ranking.
"""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import NicProvisioner
from repro.fleet.engine import EventEngine, FleetEngine
from repro.fleet.events import EventConfig
from repro.fleet.policies import DiagnosisRebalancePolicy, PlacementModel
from repro.nic.nic import SmartNic
from repro.nic.spec import get_spec
from repro.profiling.collector import ProfilingCollector
from repro.rng import derive_seed

PLAIN_POOL = ("flowstats", "nat", "acl")
TRAINED_POOL = ("flowmonitor", "flowstats", "nids")
MIX = {"bluefield2": 0.6, "pensando": 0.4}
EPOCHS = 5


def _churn(pool, rate=2.0):
    return ChurnProcess(
        nf_names=pool,
        seed=77,
        arrival_rate=rate,
        mean_lifetime=8.0,
        initial_services=4,
    )


def _busy_churn(seed=78):
    """A tighter-SLA, higher-churn schedule that provokes migrations."""
    return ChurnProcess(
        nf_names=TRAINED_POOL,
        seed=seed,
        arrival_rate=6.0,
        mean_lifetime=10.0,
        sla_range=(0.005, 0.03),
        initial_services=8,
    )


@pytest.fixture(scope="module")
def plain_model(noisy_nic):
    return PlacementModel(collector=ProfilingCollector(noisy_nic), nic=noisy_nic)


@pytest.fixture(scope="module")
def trained_model(small_system):
    return PlacementModel(yala=small_system)


@pytest.fixture(scope="module")
def flip_model():
    """A trained model under which migration cost flips the yala-vs-
    rebalance ranking (the session-wide ``small_system`` never lets
    rebalancing fall strictly *behind* yala, so the acceptance scenario
    trains its own NIC-seed-909 system once per module)."""
    from repro.core.predictor import YalaSystem
    from repro.nic.spec import bluefield2_spec

    nic = SmartNic(bluefield2_spec(), seed=909)
    system = YalaSystem(nic, seed=909, quota=200)
    system.train(list(TRAINED_POOL))
    return PlacementModel(yala=system)


@pytest.fixture(scope="module")
def mixed_model():
    bf2 = SmartNic(get_spec("bluefield2"), seed=2025)
    pen = SmartNic(get_spec("pensando"), seed=derive_seed(2025, "pensando"))
    model = PlacementModel(collector=ProfilingCollector(bf2), nic=bf2)
    model.add_target(collector=ProfilingCollector(pen), nic=pen)
    return model


def _assert_byte_equal(event_report, epoch_report):
    assert event_report.fleet.to_json() == epoch_report.to_json()
    assert event_report.fleet.render() == epoch_report.render()


class TestEpochEquivalence:
    """Quantized event runs equal epoch runs byte for byte."""

    @pytest.mark.parametrize("policy", ["greedy", "monopolization"])
    def test_plain_policies(self, plain_model, policy):
        epoch = FleetEngine(policy, _churn(PLAIN_POOL), plain_model).run(EPOCHS)
        event = EventEngine(
            policy,
            _churn(PLAIN_POOL),
            plain_model,
            config=EventConfig.epoch_equivalent(),
        ).run(EPOCHS)
        _assert_byte_equal(event, epoch)

    def test_yala_policy(self, trained_model):
        epoch = FleetEngine("yala", _churn(TRAINED_POOL), trained_model).run(
            EPOCHS
        )
        event = EventEngine(
            "yala",
            _churn(TRAINED_POOL),
            trained_model,
            config=EventConfig.epoch_equivalent(),
        ).run(EPOCHS)
        _assert_byte_equal(event, epoch)

    def test_rebalance_policy_with_live_migrations(self, trained_model):
        epoch = FleetEngine("rebalance", _busy_churn(), trained_model).run(6)
        # The scenario must actually migrate, or this test pins nothing.
        assert epoch.total_migrations >= 1
        event = EventEngine(
            "rebalance",
            _busy_churn(),
            trained_model,
            config=EventConfig.epoch_equivalent(),
        ).run(6)
        _assert_byte_equal(event, epoch)
        assert event.migrations_started == epoch.total_migrations

    def test_heterogeneous_fleet(self, mixed_model):
        def hetero_churn():
            return ChurnProcess(
                nf_names=("flowstats", "nat", "nids"),
                seed=77,
                arrival_rate=2.5,
                mean_lifetime=8.0,
                initial_services=6,
            )

        def provisioner():
            return NicProvisioner(MIX, seed=derive_seed(11, "nic-mix"))

        epoch = FleetEngine(
            "greedy", hetero_churn(), mixed_model, provisioner=provisioner()
        ).run(EPOCHS)
        event = EventEngine(
            "greedy",
            hetero_churn(),
            mixed_model,
            provisioner=provisioner(),
            config=EventConfig.epoch_equivalent(),
        ).run(EPOCHS)
        _assert_byte_equal(event, epoch)

    def test_quantized_integral_matches_epoch_counts(self, plain_model):
        """On the grid the left-Riemann integral degenerates to the
        epoch sum: violation-seconds = sum of per-epoch violations x 1s."""
        event = EventEngine(
            "greedy",
            _churn(PLAIN_POOL),
            plain_model,
            config=EventConfig.epoch_equivalent(),
        ).run(EPOCHS)
        assert event.violation_service_seconds == float(
            sum(m.sla_violations for m in event.fleet.metrics)
        )
        # Every observation sits on the grid, so each left-Riemann
        # interval is exactly one second wide.
        assert event.drop_service_seconds == pytest.approx(
            sum(o.drop_sum for o in event.observations)
        )
        assert all(o.kind == "probe" for o in event.observations)


class TestEventDeterminism:
    def test_continuous_run_bit_identical(self, plain_model):
        def run():
            return EventEngine("greedy", _churn(PLAIN_POOL), plain_model).run(
                EPOCHS
            )

        a, b = run(), run()
        assert a.to_json() == b.to_json()
        assert a.event_log == b.event_log

    def test_batch_and_loop_pop_identical_event_sequences(self, plain_model):
        batched = EventEngine(
            "greedy", _churn(PLAIN_POOL), plain_model, score_mode="batch"
        ).run(EPOCHS)
        looped = EventEngine(
            "greedy", _churn(PLAIN_POOL), plain_model, score_mode="loop"
        ).run(EPOCHS)
        assert batched.event_log == looped.event_log
        assert batched.observations == looped.observations
        a = json.loads(batched.fleet.to_json())
        b = json.loads(looped.fleet.to_json())
        a.pop("score_mode"), b.pop("score_mode")
        assert a == b

    def test_continuous_observes_more_than_probes(self, plain_model):
        report = EventEngine("greedy", _churn(PLAIN_POOL), plain_model).run(
            EPOCHS
        )
        kinds = {o.kind for o in report.observations}
        assert kinds == {"probe", "change"}
        assert report.probes == EPOCHS
        assert len(report.observations) > report.probes
        # Change observations sit off the epoch grid (sub-epoch arrivals).
        assert any(
            o.time != math.floor(o.time)
            for o in report.observations
            if o.kind == "change"
        )
        # One epoch row per probe, regardless of extra observations.
        assert len(report.fleet.metrics) == EPOCHS

    def test_observation_times_strictly_increase(self, plain_model):
        report = EventEngine("greedy", _churn(PLAIN_POOL), plain_model).run(
            EPOCHS
        )
        times = [o.time for o in report.observations]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_horizon_validated(self, plain_model):
        with pytest.raises(ConfigurationError):
            EventEngine("greedy", _churn(PLAIN_POOL), plain_model).run(0)


class TestTimedMigrations:
    def test_migrations_take_time_and_complete(self, trained_model):
        report = EventEngine(
            "rebalance",
            _busy_churn(),
            trained_model,
            config=EventConfig(migration_duration=1.5),
        ).run(6)
        assert report.migrations_started >= 1
        assert report.migrations_completed >= 1
        assert any("migration-start" in line for line in report.event_log)
        assert any("migration-complete" in line for line in report.event_log)
        for record in report.timed_migrations:
            assert record.end_time == record.start_time + 1.5

    def test_zero_duration_is_the_atomic_path(self, trained_model):
        report = EventEngine(
            "rebalance",
            _busy_churn(),
            trained_model,
            config=EventConfig(migration_duration=0.0, quantize_arrivals=True),
        ).run(6)
        assert report.migrations_started >= 1
        assert report.timed_migrations == []
        assert not any("migration-complete" in line for line in report.event_log)


class TestSpinUpLatency:
    def test_booting_nics_drop_their_residents(self, plain_model):
        slow = EventEngine(
            "monopolization",
            _churn(PLAIN_POOL),
            plain_model,
            config=EventConfig(quantize_arrivals=True, spinup_latency=0.5),
        ).run(EPOCHS)
        instant = EventEngine(
            "monopolization",
            _churn(PLAIN_POOL),
            plain_model,
            config=EventConfig.epoch_equivalent(),
        ).run(EPOCHS)
        assert slow.drop_service_seconds > instant.drop_service_seconds


class TestMigrationCostRanking:
    """Acceptance: migration cost flips the yala-vs-rebalance ranking."""

    HORIZON = 8

    def _run(self, model, policy, duration):
        return EventEngine(
            policy,
            _busy_churn(seed=77),
            model,
            config=EventConfig(migration_duration=duration),
        ).run(self.HORIZON)

    def test_free_migration_rewards_rebalancing(self, flip_model):
        yala = self._run(flip_model, "yala", 0.0)
        rebalance = self._run(
            flip_model, DiagnosisRebalancePolicy(react_at_probes=True), 0.0
        )
        assert rebalance.migrations_started >= 1
        assert (
            rebalance.violation_service_seconds
            < yala.violation_service_seconds
        )

    def test_costly_migration_flips_the_ranking(self, flip_model):
        yala = self._run(flip_model, "yala", 2.5)
        rebalance = self._run(
            flip_model, DiagnosisRebalancePolicy(react_at_probes=True), 2.5
        )
        assert rebalance.migrations_started >= 1
        # Identical decisions, but 2.5s of dual-NIC contention per move
        # now costs more violation-time than the moves recover.
        assert (
            rebalance.violation_service_seconds
            > yala.violation_service_seconds
        )


class TestFlashCrowdExample:
    def test_example_asserts_the_epoch_blind_spot(self):
        """examples/flash_crowd_midpoint.py self-asserts that a mid-
        epoch flash crowd is invisible to the epoch engine but seen by
        the event engine; a clean exit is the smoke check."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        src = str(root / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
        result = subprocess.run(
            [sys.executable, str(root / "examples" / "flash_crowd_midpoint.py")],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "only the event engine saw the spike" in result.stdout


class TestCli:
    ARGV = [
        "--epochs", "3",
        "--policy", "greedy",
        "--arrival-rate", "1.0",
        "--initial-services", "3",
        "--engine", "event",
        "--format", "json",
    ]

    def test_event_cli_deterministic_stdout(self, capsys):
        from repro.fleet.__main__ import main

        assert main(list(self.ARGV)) == 0
        first = capsys.readouterr().out
        assert main(list(self.ARGV)) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["fleet"]["policy"] == "greedy"
        assert payload["horizon"] == 3.0
        assert payload["summary"]["events_processed"] > 0

    def test_out_flag_writes_json_report(self, capsys, tmp_path):
        from repro.fleet.__main__ import main

        out = tmp_path / "report.json"
        argv = list(self.ARGV) + ["--out", str(out)]
        assert main(argv) == 0
        stdout = capsys.readouterr().out
        assert out.read_text(encoding="utf-8") == stdout
        json.loads(out.read_text(encoding="utf-8"))  # well-formed

    def test_out_flag_with_text_format(self, capsys, tmp_path):
        from repro.fleet.__main__ import main

        out = tmp_path / "report.json"
        argv = [a for a in self.ARGV if a not in ("--format", "json")]
        assert main(argv + ["--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        # Text report on stdout, JSON in the file.
        assert "violation-seconds" in stdout
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["fleet"]["policy"] == "greedy"
