"""Tests for the crash-surviving ProcessRuntime.

The recovery contract: worker deaths (and hangs, and broken pools) may
cost wall-clock, never bytes. :class:`FaultInjectingRuntime` SIGKILLs
its own workers on a seeded schedule and the resulting report must be
byte-identical to :class:`SerialRuntime`'s — the retry + pool-rebuild
+ deterministic-serial-re-execution path is exercised for real, not
mocked. Lifecycle: engines own their runtime teardown on error, and
``close()`` is idempotent everywhere.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    FaultInjectingRuntime,
    FleetConfig,
    FleetEngine,
    ProcessRuntime,
    SerialRuntime,
    build_model,
    simulate,
)

BASE = dict(
    policy="greedy", epochs=5, quota=40, initial_services=24,
    arrival_rate=6.0, pods=4, nic_fail_rate=0.3, mean_time_to_fail=2.0,
)


@pytest.fixture(scope="module")
def model():
    config = FleetConfig(**BASE)
    return build_model(
        config.policy, config.nf_pool, config.seed, config.quota, 1
    )


@pytest.fixture(scope="module")
def serial_report(model):
    return simulate(FleetConfig(**BASE), model=model).to_json()


def _engine(config, model, runtime):
    return FleetEngine(
        config.policy,
        config.churn(),
        model,
        score_mode=config.score_mode,
        provisioner=config.provisioner(),
        runtime=runtime,
        topology=config.topology(),
        faults=config.fault_schedule(),
    )


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"task_timeout": 0.0},
        {"task_timeout": -1.0},
        {"max_retries": -1},
        {"retry_backoff": -0.1},
    ])
    def test_process_runtime_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProcessRuntime(jobs=2, **kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"kill_every": 0},
        {"max_kills": -1},
    ])
    def test_injector_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultInjectingRuntime(jobs=2, **kwargs)


class TestLifecycle:
    def test_close_idempotent(self):
        for runtime in (SerialRuntime(), ProcessRuntime(jobs=2)):
            runtime.close()
            runtime.close()  # second close is a no-op, never an error

    def test_abort_then_close(self):
        runtime = ProcessRuntime(jobs=2)
        runtime._abort_pool()  # nothing to abort: still fine
        runtime.close()

    def test_engine_closes_runtime_on_error(self, model):
        class ExplodingRuntime(SerialRuntime):
            def __init__(self):
                super().__init__()
                self.closed = 0

            def score_pods(self, tasks, score_mode):
                raise RuntimeError("boom")

            def close(self):
                self.closed += 1
                super().close()

        runtime = ExplodingRuntime()
        engine = _engine(FleetConfig(**BASE), model, runtime)
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(2)
        assert runtime.closed >= 1

    def test_engine_keeps_pool_warm_on_success(self, model):
        # Success must NOT tear the pool down mid-session — the next
        # run reuses the warm workers (simulate()'s finally owns the
        # final close).
        runtime = ProcessRuntime(jobs=2, min_parallel_items=4)
        try:
            engine = _engine(FleetConfig(**BASE), model, runtime)
            engine.run(2)
            assert runtime._pool is not None
        finally:
            runtime.close()
        assert runtime._pool is None


class TestKilledWorkersCostTimeNeverBytes:
    def test_injected_kills_reproduce_serial_bytes(
        self, model, serial_report
    ):
        runtime = FaultInjectingRuntime(
            jobs=4, kill_every=2, kill_seed=7, min_parallel_items=4,
            task_timeout=120.0, retry_backoff=0.01,
        )
        try:
            engine = _engine(FleetConfig(**BASE), model, runtime)
            report = engine.run(FleetConfig(**BASE).epochs)
        finally:
            runtime.close()
        assert runtime.kills > 0, "no worker was ever killed"
        assert runtime.recoveries > 0, "recovery path never exercised"
        assert report.to_json() == serial_report

    def test_kill_schedule_is_seeded(self, model):
        # Same kill_seed twice: identical kill/recovery counts — the
        # victim choice is pure in (kill_seed, batch), never in pids.
        counts = []
        for _ in range(2):
            runtime = FaultInjectingRuntime(
                jobs=2, kill_every=3, kill_seed=11,
                min_parallel_items=4, task_timeout=120.0,
                retry_backoff=0.01, max_kills=2,
            )
            try:
                engine = _engine(FleetConfig(**BASE), model, runtime)
                engine.run(3)
            finally:
                runtime.close()
            counts.append(runtime.kills)
        assert counts[0] == counts[1]
        assert counts[0] > 0

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_healthy_process_runtime_matches_serial(
        self, model, serial_report, jobs
    ):
        runtime = ProcessRuntime(jobs=jobs, min_parallel_items=4)
        try:
            engine = _engine(FleetConfig(**BASE), model, runtime)
            report = engine.run(FleetConfig(**BASE).epochs)
        finally:
            runtime.close()
        assert runtime.recoveries == 0
        assert report.to_json() == serial_report


class TestSerialFallback:
    def test_zero_retries_still_byte_identical(self, model, serial_report):
        # max_retries=0 forces the deterministic serial re-execution
        # path as soon as the first kill lands.
        runtime = FaultInjectingRuntime(
            jobs=2, kill_every=1, kill_seed=3, min_parallel_items=4,
            task_timeout=120.0, max_retries=0, retry_backoff=0.0,
        )
        try:
            engine = _engine(FleetConfig(**BASE), model, runtime)
            report = engine.run(FleetConfig(**BASE).epochs)
        finally:
            runtime.close()
        assert runtime.kills > 0
        assert report.to_json() == serial_report
