"""Unit tests for the hardware-target registry in ``repro.nic.spec``."""

import pytest

from repro.errors import ConfigurationError
from repro.nic.spec import (
    DEFAULT_TARGET,
    NicSpecification,
    available_specs,
    bluefield2_spec,
    get_spec,
    pensando_spec,
    register_spec,
)


class TestRegistry:
    def test_builtin_targets_available(self):
        names = available_specs()
        assert "bluefield2" in names
        assert "pensando" in names
        assert DEFAULT_TARGET in names

    def test_round_trip(self):
        assert get_spec("bluefield2") == bluefield2_spec()
        assert get_spec("pensando") == pensando_spec()
        for name in available_specs():
            assert get_spec(name).name == name

    def test_get_spec_cached_instance(self):
        assert get_spec("bluefield2") is get_spec("bluefield2")

    def test_unknown_name_error_lists_available(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_spec("connectx")
        message = str(excinfo.value)
        assert "connectx" in message
        assert "bluefield2" in message

    def test_reregister_requires_overwrite(self):
        with pytest.raises(ConfigurationError):
            register_spec("bluefield2", bluefield2_spec)

    def test_register_custom_target(self):
        def tiny() -> NicSpecification:
            return NicSpecification(
                name="tiny-test-nic",
                num_cores=2,
                core_freq_mhz=1000.0,
                llc_bytes=1024.0 * 1024.0,
                dram_bandwidth_bpus=1000.0,
                dram_latency_us=0.2,
                llc_hit_time_us=0.02,
                line_rate_gbps=10.0,
            )

        register_spec("tiny-test-nic", tiny, overwrite=True)
        try:
            assert get_spec("tiny-test-nic").num_cores == 2
            assert "tiny-test-nic" in available_specs()
        finally:
            # Registry is module-global: drop the test entry.
            from repro.nic import spec as spec_module

            spec_module._SPEC_FACTORIES.pop("tiny-test-nic", None)
            spec_module._SPEC_CACHE.pop("tiny-test-nic", None)

    def test_name_mismatch_rejected(self):
        register_spec("wrong-name", bluefield2_spec, overwrite=True)
        try:
            with pytest.raises(ConfigurationError):
                get_spec("wrong-name")
        finally:
            from repro.nic import spec as spec_module

            spec_module._SPEC_FACTORIES.pop("wrong-name", None)
            spec_module._SPEC_CACHE.pop("wrong-name", None)


class TestHashability:
    def test_equal_specs_equal_hash(self):
        assert bluefield2_spec() == bluefield2_spec()
        assert hash(bluefield2_spec()) == hash(bluefield2_spec())

    def test_distinct_specs_differ(self):
        assert bluefield2_spec() != pensando_spec()

    def test_usable_as_dict_key(self):
        pools = {bluefield2_spec(): 0.7, pensando_spec(): 0.3}
        assert pools[bluefield2_spec()] == 0.7
        assert pools[get_spec("pensando")] == 0.3
        assert len({bluefield2_spec(), bluefield2_spec(), pensando_spec()}) == 2
