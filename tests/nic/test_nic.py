"""Integration tests for the SmartNIC co-location runtime."""

import pytest

from repro.errors import PlacementError, SimulationError
from repro.nf.catalog import make_nf
from repro.nf.synthetic import mem_bench, regex_bench, regex_nf
from repro.nic.counters import COUNTER_NAMES, PerfCounters
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile

TRAFFIC = TrafficProfile()
SMALL = TrafficProfile(1_000, 86, 194.0)


@pytest.fixture(scope="module")
def nic() -> SmartNic:
    return SmartNic(bluefield2_spec(), seed=11, noise_std=0.0)


class TestRunBasics:
    def test_solo_run_reports_positive_throughput(self, nic):
        result = nic.run_solo(make_nf("flowstats").demand(TRAFFIC))
        assert result.throughput_mpps > 0.1

    def test_solo_throughputs_in_plausible_range(self, nic):
        """All catalog NFs land between 0.3 and 4 Mpps solo (paper-like)."""
        from repro.nf.catalog import NF_CATALOG

        for name in NF_CATALOG:
            if name == "firewall":
                continue
            result = nic.run_solo(make_nf(name).demand(TRAFFIC))
            assert 0.3 < result.throughput_mpps < 4.0, name

    def test_rejects_empty_run(self, nic):
        with pytest.raises(SimulationError):
            nic.run([])

    def test_rejects_duplicate_names(self, nic):
        demand = make_nf("acl").demand(TRAFFIC)
        with pytest.raises(SimulationError):
            nic.run([demand, demand])

    def test_rejects_core_oversubscription(self, nic):
        demands = [
            make_nf("acl").demand(TRAFFIC, instance=f"acl{i}") for i in range(5)
        ]
        with pytest.raises(PlacementError):
            nic.run(demands)

    def test_line_rate_caps_throughput(self, nic):
        result = nic.run_solo(make_nf("acl").demand(TRAFFIC))
        assert result.throughput_mpps <= nic.spec.line_rate_mpps(1500) * 1.001

    def test_open_loop_arrival_respected(self, nic):
        demand = make_nf("acl").demand(TRAFFIC, arrival_rate_mpps=0.5)
        assert nic.run_solo(demand).throughput_mpps == pytest.approx(0.5, rel=0.01)

    def test_deterministic_without_noise(self, nic):
        demand = make_nf("nat").demand(TRAFFIC)
        a = nic.run_solo(demand).throughput_mpps
        b = nic.run_solo(demand).throughput_mpps
        assert a == b


class TestContention:
    def test_memory_contention_reduces_throughput(self, nic):
        nf = make_nf("flowstats")
        solo = nic.run_solo(nf.demand(TRAFFIC)).throughput_mpps
        co = nic.run([nf.demand(TRAFFIC), mem_bench(220.0, wss_mb=10.0)])
        assert co.throughput_of("flowstats") < solo

    def test_memory_contention_monotone_in_car(self, nic):
        nf = make_nf("flowstats")
        rates = [
            nic.run([nf.demand(TRAFFIC), mem_bench(car, wss_mb=10.0)]).throughput_of(
                "flowstats"
            )
            for car in (50.0, 150.0, 250.0)
        ]
        assert rates[0] >= rates[1] >= rates[2]

    def test_regex_contention_hits_regex_nf_only(self, nic):
        nids = make_nf("nids")
        acl = make_nf("acl")
        bench = regex_bench(1.5, mtbr=900.0)
        solo_nids = nic.run_solo(nids.demand(TRAFFIC)).throughput_mpps
        solo_acl = nic.run_solo(acl.demand(TRAFFIC)).throughput_mpps
        co = nic.run([nids.demand(TRAFFIC), acl.demand(TRAFFIC), bench])
        assert co.throughput_of("nids") < 0.9 * solo_nids
        assert co.throughput_of("acl") > 0.95 * solo_acl

    def test_regex_equilibrium_equal_rates(self, nic):
        """Fig. 4's equilibrium: both saturated clients settle equal."""
        nf = regex_nf(mtbr=194.0)
        result = nic.run([nf.demand(SMALL), regex_bench(40.0, mtbr=417.0, payload_bytes=32.0)])
        assert result.throughput_of("regex-nf") == pytest.approx(
            result.throughput_of("regex-bench"), rel=0.01
        )

    def test_regex_linear_decline_before_equilibrium(self, nic):
        nf = regex_nf(mtbr=194.0)
        rates = []
        for bench_rate in (2.0, 6.0, 10.0):
            result = nic.run(
                [nf.demand(SMALL), regex_bench(bench_rate, mtbr=417.0, payload_bytes=32.0)]
            )
            rates.append(result.throughput_of("regex-nf"))
        drop1, drop2 = rates[0] - rates[1], rates[1] - rates[2]
        assert drop1 == pytest.approx(drop2, rel=0.1)

    def test_colocated_nfs_all_report(self, nic):
        names = ["flowmonitor", "nids", "flowstats", "nat"]
        demands = [make_nf(n).demand(TRAFFIC) for n in names]
        result = nic.run(demands)
        assert set(result.workloads) == set(names)


class TestCounters:
    def test_counter_vector_order(self, nic):
        counters = nic.run_solo(make_nf("flowstats").demand(TRAFFIC)).counters
        vector = counters.as_vector()
        assert vector.shape == (len(COUNTER_NAMES),)
        assert counters.wss == vector[-1]

    def test_car_scales_with_throughput(self, nic):
        nf = make_nf("flowstats")
        solo = nic.run_solo(nf.demand(TRAFFIC))
        contended = nic.run([nf.demand(TRAFFIC), mem_bench(250.0)])
        c = contended["flowstats"]
        assert c.counters.cache_access_rate < solo.counters.cache_access_rate

    def test_wss_reflects_flow_count(self, nic):
        nf = make_nf("flowstats")
        small = nic.run_solo(nf.demand(TrafficProfile(1_000, 1500, 600.0)))
        large = nic.run_solo(nf.demand(TrafficProfile(100_000, 1500, 600.0)))
        assert large.counters.wss > small.counters.wss

    def test_memrd_rises_under_cache_pressure(self, nic):
        nf = make_nf("flowstats")
        solo = nic.run_solo(nf.demand(TRAFFIC))
        contended = nic.run([nf.demand(TRAFFIC), mem_bench(250.0, wss_mb=12.0)])
        assert contended["flowstats"].counters.memrd > solo.counters.memrd

    def test_aggregate_adds_elementwise(self):
        a = PerfCounters(ipc=1.0, irt=2.0, l2crd=3.0)
        b = PerfCounters(ipc=0.5, irt=1.0, l2crd=1.0)
        total = PerfCounters.aggregate([a, b])
        assert total.ipc == 1.5 and total.irt == 3.0 and total.l2crd == 4.0


class TestNoiseAndBottleneck:
    def test_noise_is_deterministic_per_config(self):
        nic = SmartNic(bluefield2_spec(), seed=5)
        demand = make_nf("nat").demand(TRAFFIC)
        assert (
            nic.run_solo(demand).throughput_mpps
            == nic.run_solo(demand).throughput_mpps
        )

    def test_noise_differs_across_configs(self):
        nic = SmartNic(bluefield2_spec(), seed=5)
        a = nic.run_solo(make_nf("nat").demand(TrafficProfile(8_000, 1500, 600.0)))
        b = nic.run_solo(make_nf("nat").demand(TrafficProfile(9_000, 1500, 600.0)))
        ratio_a = a.throughput_mpps / a.true_throughput_mpps
        ratio_b = b.throughput_mpps / b.true_throughput_mpps
        assert ratio_a != ratio_b

    def test_noise_small(self):
        nic = SmartNic(bluefield2_spec(), seed=5)
        result = nic.run_solo(make_nf("nat").demand(TRAFFIC))
        assert abs(result.throughput_mpps / result.true_throughput_mpps - 1) < 0.05

    def test_bottleneck_reported(self, nic):
        result = nic.run_solo(make_nf("nids").demand(TRAFFIC))
        assert result.bottleneck in ("cpu", "memory", "regex", "compression")

    def test_regex_bound_nf_reports_regex(self, nic):
        result = nic.run(
            [
                make_nf("nids").demand(TRAFFIC),
                regex_bench(2.0, mtbr=1000.0),
            ]
        )
        assert result["nids"].bottleneck == "regex"

    def test_stage_reports_cover_all_stages(self, nic):
        nf = make_nf("flowmonitor")
        result = nic.run_solo(nf.demand(TRAFFIC))
        assert len(result.stages) == len(nf.stages(TRAFFIC))
