"""Unit tests for the round-robin accelerator engine model."""

import pytest

from repro.errors import ConfigurationError
from repro.nic.accelerator import AcceleratorClient, AcceleratorEngine
from repro.nic.spec import bluefield2_spec


@pytest.fixture()
def engine() -> AcceleratorEngine:
    return AcceleratorEngine(bluefield2_spec().accelerator("regex"))


def _closed(name="a", n=1, t=0.5):
    return AcceleratorClient(name=name, n_queues=n, request_time_us=t)


def _open(name="b", n=1, t=0.5, rate=0.5):
    return AcceleratorClient(
        name=name, n_queues=n, request_time_us=t, offered_rate=rate
    )


class TestClientValidation:
    def test_rejects_zero_queues(self):
        with pytest.raises(ConfigurationError):
            AcceleratorClient(name="x", n_queues=0, request_time_us=0.1)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ConfigurationError):
            AcceleratorClient(name="x", n_queues=1, request_time_us=0.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            AcceleratorClient(
                name="x", n_queues=1, request_time_us=0.1, offered_rate=-1.0
            )


class TestAllocation:
    def test_solo_closed_loop_rate(self, engine):
        client = _closed(t=0.5)
        rate = engine.allocate([client]).rate_of("a")
        effective = 0.5 + engine.spec.queue_switch_us
        assert rate == pytest.approx(1.0 / effective)

    def test_open_loop_below_capacity_served_exactly(self, engine):
        allocation = engine.allocate([_open(rate=0.2, t=0.5)])
        assert allocation.rate_of("b") == pytest.approx(0.2)

    def test_two_saturated_equal_queues_share_equally(self, engine):
        allocation = engine.allocate([_closed("a", t=0.5), _closed("b", t=0.5)])
        assert allocation.rate_of("a") == pytest.approx(allocation.rate_of("b"))

    def test_equilibrium_matches_rr_formula(self, engine):
        t_a, t_b = 0.3, 0.7
        allocation = engine.allocate([_closed("a", t=t_a), _closed("b", t=t_b)])
        switch = engine.spec.queue_switch_us
        expected = 1.0 / (t_a + t_b + 2 * switch)
        assert allocation.rate_of("a") == pytest.approx(expected)
        assert allocation.rate_of("b") == pytest.approx(expected)

    def test_more_queues_get_proportionally_more(self, engine):
        allocation = engine.allocate(
            [_closed("a", n=2, t=0.5), _closed("b", n=1, t=0.5)]
        )
        assert allocation.rate_of("a") == pytest.approx(
            2.0 * allocation.rate_of("b")
        )

    def test_linear_decline_with_open_competitor(self, engine):
        """The target's rate declines linearly in the bench rate (Fig 4)."""
        rates = []
        for bench_rate in (0.1, 0.3, 0.5):
            allocation = engine.allocate(
                [_closed("nf", t=0.4), _open("bench", t=0.8, rate=bench_rate)]
            )
            rates.append(allocation.rate_of("nf"))
        drop1 = rates[0] - rates[1]
        drop2 = rates[1] - rates[2]
        assert drop1 == pytest.approx(drop2, rel=0.05)

    def test_overload_open_loop_capped(self, engine):
        allocation = engine.allocate([_open("b", t=1.0, rate=100.0)])
        effective = 1.0 + engine.spec.queue_switch_us
        assert allocation.rate_of("b") == pytest.approx(1.0 / effective)

    def test_busy_fraction_bounded(self, engine):
        allocation = engine.allocate([_closed("a"), _open("b", rate=50.0)])
        assert 0.0 < allocation.busy_fraction <= 1.0

    def test_empty_allocation(self, engine):
        allocation = engine.allocate([])
        assert allocation.rates == {}

    def test_duplicate_names_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.allocate([_closed("a"), _closed("a")])


class TestCapacity:
    def test_capacity_below_solo_under_contention(self, engine):
        target = _open("nf", t=0.4, rate=0.1)
        solo = engine.solo_rate(target)
        contended = engine.capacity_for(target, [_open("bench", t=0.8, rate=0.6)])
        assert contended < solo

    def test_capacity_equals_solo_without_competitors(self, engine):
        target = _open("nf", t=0.4, rate=0.1)
        assert engine.capacity_for(target, []) == pytest.approx(
            engine.solo_rate(target)
        )

    def test_capacity_decreases_with_competitor_rate(self, engine):
        target = _closed("nf", t=0.4)
        low = engine.capacity_for(target, [_open("bench", t=0.8, rate=0.2)])
        high = engine.capacity_for(target, [_open("bench", t=0.8, rate=0.8)])
        assert high < low

    def test_switch_overhead_reduces_throughput(self):
        from repro.nic.spec import AcceleratorSpec

        no_switch = AcceleratorEngine(
            AcceleratorSpec("regex", 0.01, 0.0, 0.0, queue_switch_us=0.0)
        )
        with_switch = AcceleratorEngine(
            AcceleratorSpec("regex", 0.01, 0.0, 0.0, queue_switch_us=0.01)
        )
        client = _closed(t=0.1)
        assert with_switch.solo_rate(client) < no_switch.solo_rate(client)
