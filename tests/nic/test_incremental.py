"""Cross-epoch incremental solving at the NIC layer.

Three mechanisms, three contracts:

- **Warm-started fixed points** (``run(initial=...)`` /
  ``run_batch(warm_starts=...)``): the converged values are the *same
  fixed point* as a cold solve (within solver tolerance) but the
  iterate path differs — warm solves start from the seed, undamped —
  so warm runs are outside the bit-exactness contract. What *is*
  bit-pinned: warm batch == warm loop, and ``warm_starts=None`` ==
  the historical cold path, bit for bit.
- **Persistent compilation cache**: memoized plans/embeddings/families
  are bit-invisible — enabling or clearing the cache never changes a
  solved byte, only how much setup work ``run_batch`` repeats.
- **Straggler adoption**: small signature groups ride along inside a
  big group's padded lanes; the all-zero-dummy-lane argument keeps
  every scenario bit-identical to the scalar oracle, and the greedy
  family construction is independent of input order (hypothesis-pinned
  below).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nf.catalog import make_nf
from repro.nic.batch import (
    _SCALAR_FALLBACK_GROUP_SIZE,
    _COMPILE_CACHE,
    _ScenarioPlan,
    _embed_signature,
    _merge_small_groups,
    clear_compile_cache,
    compile_cache_enabled,
    set_compile_cache_enabled,
    solve_batch,
)
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec, pensando_spec
from repro.obs import TraceRecorder, use_recorder
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

from tests.nic.test_batch_run import assert_identical


def _mix(nic_seed=7, names=("nat", "nids", "nids"), flows=60_000):
    nic = SmartNic(bluefield2_spec(), seed=nic_seed, noise_std=0.0)
    traffic = TrafficProfile(flows, 64, 100.0)
    scenario = [
        make_nf(n).demand(traffic, instance=f"{n}#{j}")
        for j, n in enumerate(names)
    ]
    return nic, scenario


class TestWarmStartedRun:
    def test_same_fixed_point_fewer_iterations(self):
        nic, scenario = _mix()
        cold = nic.run(scenario)
        seed = {w.name: cold.throughput_of(w.name) for w in scenario}
        # Drift the traffic: structure identical, fixed point nearby.
        drifted = [
            make_nf(n).demand(
                TrafficProfile(63_000, 64, 100.0), instance=f"{n}#{j}"
            )
            for j, n in enumerate(("nat", "nids", "nids"))
        ]
        cold2 = nic.run(drifted)
        warm2 = nic.run(drifted, initial=seed)
        for w in drifted:
            a = cold2.throughput_of(w.name)
            b = warm2.throughput_of(w.name)
            assert abs(a - b) / a < 1e-6, w.name
        assert warm2.iterations < cold2.iterations

    def test_exact_seed_converges_immediately(self):
        nic, scenario = _mix()
        cold = nic.run(scenario)
        seed = {
            w.name: cold[w.name].true_throughput_mpps for w in scenario
        }
        warm = nic.run(scenario, initial=seed)
        assert warm.iterations <= 3
        for w in scenario:
            a = cold.throughput_of(w.name)
            b = warm.throughput_of(w.name)
            assert abs(a - b) / a < 1e-6, w.name

    def test_partial_seed_allowed(self):
        nic, scenario = _mix()
        cold = nic.run(scenario)
        seed = {scenario[0].name: cold.throughput_of(scenario[0].name)}
        warm = nic.run(scenario, initial=seed)
        for w in scenario:
            a = cold.throughput_of(w.name)
            b = warm.throughput_of(w.name)
            assert abs(a - b) / a < 1e-6, w.name

    def test_initial_none_is_the_cold_path(self):
        nic, scenario = _mix()
        assert_identical(nic.run(scenario), nic.run(scenario, initial=None))

    def test_batch_warm_matches_loop_warm_bit_for_bit(self):
        nic, scenario = _mix()
        cold = nic.run(scenario)
        seed = {w.name: cold.throughput_of(w.name) for w in scenario}
        other = [
            make_nf(n).demand(
                TrafficProfile(90_000, 128, 300.0), instance=f"{n}#{j}"
            )
            for j, n in enumerate(("nat", "nids", "nids"))
        ]
        # Mixed warm/cold rows inside one structural group: per-row
        # damping schedules must reproduce the scalar paths exactly.
        scenarios = [scenario, other, scenario]
        warms = [seed, None, seed]
        batch = nic.run_batch(scenarios, warm_starts=warms)
        for i, (scen, warm) in enumerate(zip(scenarios, warms)):
            assert_identical(
                nic.run(scen, initial=warm), batch[i], f"warm row {i}"
            )

    def test_warm_starts_none_is_bit_identical_to_cold_batch(self):
        nic, scenario = _mix()
        other = [
            make_nf(n).demand(
                TrafficProfile(90_000, 128, 300.0), instance=f"{n}#{j}"
            )
            for j, n in enumerate(("nat", "nids", "nids"))
        ]
        a = nic.run_batch([scenario, other])
        b = nic.run_batch([scenario, other], warm_starts=None)
        c = nic.run_batch([scenario, other], warm_starts=[None, None])
        for i in range(2):
            assert_identical(a[i], b[i], f"none {i}")
            assert_identical(a[i], c[i], f"explicit none {i}")


class TestCompileCache:
    def setup_method(self):
        clear_compile_cache()

    def teardown_method(self):
        set_compile_cache_enabled(True)
        clear_compile_cache()

    def _scenarios(self, nic_seed=3):
        rng = make_rng(17)
        mixes = [("flowstats", "nat"), ("nids",), ("nat", "nids", "acl")]
        out = []
        for _ in range(3):
            for mix in mixes:
                traffic = TrafficProfile(
                    int(rng.integers(5_000, 200_000)), 256, 500.0
                )
                out.append(
                    [
                        make_nf(n).demand(traffic, instance=f"{n}#{j}")
                        for j, n in enumerate(mix)
                    ]
                )
        return out

    def test_cache_is_bit_invisible(self):
        nic = SmartNic(bluefield2_spec(), seed=3)
        scenarios = self._scenarios()
        set_compile_cache_enabled(False)
        cold = nic.run_batch(scenarios)
        set_compile_cache_enabled(True)
        clear_compile_cache()
        first = nic.run_batch(scenarios)   # populates the cache
        second = nic.run_batch(scenarios)  # replays from the cache
        for i in range(len(scenarios)):
            assert_identical(cold[i], first[i], f"populate {i}")
            assert_identical(cold[i], second[i], f"replay {i}")

    def test_repeat_calls_hit_the_cache(self):
        nic = SmartNic(bluefield2_spec(), seed=3)
        scenarios = self._scenarios()
        assert compile_cache_enabled()
        nic.run_batch(scenarios)
        misses_after_first = _COMPILE_CACHE.misses
        hits_after_first = _COMPILE_CACHE.hits
        nic.run_batch(scenarios)
        assert _COMPILE_CACHE.misses == misses_after_first
        assert _COMPILE_CACHE.hits > hits_after_first

    def test_identical_spec_objects_share_plans(self):
        # The cache keys on spec *identity*: two NICs built around the
        # same spec object share compiled plans, distinct spec objects
        # (even equal ones) do not alias.
        spec = bluefield2_spec()
        nic_a = SmartNic(spec, seed=3)
        nic_b = SmartNic(spec, seed=4)
        scenarios = self._scenarios()
        nic_a.run_batch(scenarios)
        misses = _COMPILE_CACHE.misses
        nic_b.run_batch(scenarios)
        assert _COMPILE_CACHE.misses == misses
        nic_c = SmartNic(bluefield2_spec(), seed=3)
        nic_c.run_batch(scenarios)
        assert _COMPILE_CACHE.misses > misses

    def test_clear_empties_tables_keeps_counters(self):
        nic = SmartNic(bluefield2_spec(), seed=3)
        nic.run_batch(self._scenarios())
        assert _COMPILE_CACHE.plans
        misses = _COMPILE_CACHE.misses
        clear_compile_cache()
        assert not _COMPILE_CACHE.plans
        assert not _COMPILE_CACHE.embeddings
        assert not _COMPILE_CACHE.families
        assert _COMPILE_CACHE.misses == misses


class TestStragglerAdoption:
    """Small groups whose signature embeds into a big group's ride
    along as masked lanes of the big group's arrays."""

    def _scenarios(self):
        rng = make_rng(29)
        big_mix = ("flowstats", "nat", "nids")
        small_mixes = [("flowstats", "nids"), ("nat",)]
        scenarios = []
        for _ in range(_SCALAR_FALLBACK_GROUP_SIZE + 2):  # the big group
            traffic = [
                TrafficProfile(int(rng.integers(5_000, 300_000)), 512, 700.0)
                for _ in big_mix
            ]
            scenarios.append(
                [
                    make_nf(n).demand(t, instance=f"{n}#{j}")
                    for j, (n, t) in enumerate(zip(big_mix, traffic))
                ]
            )
        for mix in small_mixes:  # one straggler scenario per small sig
            traffic = [
                TrafficProfile(int(rng.integers(5_000, 300_000)), 512, 700.0)
                for _ in mix
            ]
            scenarios.append(
                [
                    make_nf(n).demand(t, instance=f"{n}#{j}")
                    for j, (n, t) in enumerate(zip(mix, traffic))
                ]
            )
        return scenarios

    def test_adoption_engages_here(self):
        nic = SmartNic(bluefield2_spec(), seed=11)
        scenarios = self._scenarios()
        plans = [_ScenarioPlan(nic, s) for s in scenarios]
        sigs: dict = {}
        for plan in plans:
            sigs[plan.signature] = sigs.get(plan.signature, 0) + 1
        big = [s for s, n in sigs.items() if n >= _SCALAR_FALLBACK_GROUP_SIZE]
        small = [s for s, n in sigs.items() if n < _SCALAR_FALLBACK_GROUP_SIZE]
        assert big and small
        assert all(
            any(_embed_signature(s, b) is not None for b in big)
            for s in small
        )
        recorder = TraceRecorder()
        with use_recorder(recorder):
            nic.run_batch(scenarios)
        assert recorder.exec_counters.get("batch.adoptions", 0) >= len(small)

    def test_adopted_scenarios_match_scalar_oracle(self):
        nic = SmartNic(bluefield2_spec(), seed=11)
        scenarios = self._scenarios()
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"adopted {i}")

    def test_adoption_matches_disabled_padding(self):
        nic = SmartNic(pensando_spec(), seed=13)
        scenarios = self._scenarios()
        padded = solve_batch(nic, scenarios, pad_small_groups=True)
        scalar = solve_batch(nic, scenarios, pad_small_groups=False)
        for i in range(len(scenarios)):
            assert_identical(scalar[i], padded[i], f"scenario {i}")

    def test_adoption_with_warm_starts(self):
        nic = SmartNic(bluefield2_spec(), seed=11)
        scenarios = self._scenarios()
        cold = [nic.run(s) for s in scenarios]
        warms = [
            {w.name: cold[i].throughput_of(w.name) for w in s}
            if i % 2 == 0
            else None
            for i, s in enumerate(scenarios)
        ]
        batch = nic.run_batch(scenarios, warm_starts=warms)
        for i, (scenario, warm) in enumerate(zip(scenarios, warms)):
            assert_identical(
                nic.run(scenario, initial=warm), batch[i], f"warm adopt {i}"
            )

    def test_scenario_order_invariance(self):
        nic = SmartNic(bluefield2_spec(), seed=11)
        scenarios = self._scenarios()
        base = nic.run_batch(scenarios)
        order = list(range(len(scenarios)))[::-1]
        permuted = nic.run_batch([scenarios[i] for i in order])
        for out_pos, src in enumerate(order):
            assert_identical(base[src], permuted[out_pos], f"perm {src}")


class TestFamilyOrderIndependence:
    """The greedy family construction is a pure function of the group
    *multiset*: dict insertion order (an accident of scenario order)
    never changes which families form."""

    @staticmethod
    def _families(small):
        merged, leftovers = _merge_small_groups(list(small))
        families = tuple(
            sorted(
                (
                    super_sig,
                    tuple(sorted(sig for sig, _, _ in members)),
                )
                for super_sig, members in merged
            )
        )
        left = tuple(sorted(sig for sig, _, _ in leftovers))
        return families, left

    @given(
        order=st.permutations(list(range(6))),
        sizes=st.lists(
            st.integers(min_value=1, max_value=2), min_size=6, max_size=6
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_families_ignore_insertion_order(self, order, sizes):
        nic = SmartNic(bluefield2_spec(), seed=123)
        traffic = TrafficProfile(50_000, 256, 400.0)
        mixes = [
            ("flowstats", "nat", "nids"),
            ("flowstats", "nids"),
            ("nat", "nids"),
            ("flowstats",),
            ("nids",),
            ("nat",),
        ]
        groups = []
        for mix, size in zip(mixes, sizes):
            scenario = [
                make_nf(n).demand(traffic, instance=f"{n}#{j}")
                for j, n in enumerate(mix)
            ]
            plan = _ScenarioPlan(nic, scenario)
            groups.append((plan.signature, [plan] * size, list(range(size))))
        # The family memo would replay the first-seen answer and mask a
        # genuine order dependence — run the greedy cold both times.
        set_compile_cache_enabled(False)
        try:
            baseline = self._families(groups)
            shuffled = self._families([groups[i] for i in order])
        finally:
            set_compile_cache_enabled(True)
            clear_compile_cache()
        assert baseline == shuffled
