"""Unit tests for NIC specifications and workload demand types."""

import pytest

from repro.errors import ConfigurationError
from repro.nic.spec import (
    CACHE_LINE_BYTES,
    AcceleratorSpec,
    NicSpecification,
    bluefield2_spec,
    pensando_spec,
)
from repro.nic.workload import (
    ExecutionPattern,
    Resource,
    StageDemand,
    WorkloadDemand,
)


class TestAcceleratorSpec:
    def test_request_time_components(self):
        spec = AcceleratorSpec("regex", base_time_us=0.01, per_byte_us=0.001, per_match_us=0.1)
        assert spec.request_time_us(100.0, 2.0) == pytest.approx(0.01 + 0.1 + 0.2)

    def test_request_time_zero_payload(self):
        spec = bluefield2_spec().accelerator("regex")
        assert spec.request_time_us(0.0, 0.0) == pytest.approx(spec.base_time_us)

    def test_request_time_rejects_negative(self):
        spec = bluefield2_spec().accelerator("regex")
        with pytest.raises(ConfigurationError):
            spec.request_time_us(-1.0, 0.0)

    def test_request_time_monotone_in_matches(self):
        spec = bluefield2_spec().accelerator("regex")
        assert spec.request_time_us(100.0, 3.0) > spec.request_time_us(100.0, 1.0)


class TestNicSpecification:
    def test_bluefield2_shape(self):
        spec = bluefield2_spec()
        assert spec.num_cores == 8
        assert spec.llc_bytes == 6 * 1024 * 1024
        assert set(spec.accelerators) == {"regex", "compression"}

    def test_pensando_differs(self):
        bf2, pen = bluefield2_spec(), pensando_spec()
        assert pen.num_cores != bf2.num_cores
        assert pen.llc_bytes != bf2.llc_bytes

    def test_unknown_accelerator_raises(self):
        with pytest.raises(ConfigurationError):
            bluefield2_spec().accelerator("fpga")

    def test_line_rate_small_packets_faster(self):
        spec = bluefield2_spec()
        assert spec.line_rate_mpps(64) > spec.line_rate_mpps(1500)

    def test_line_rate_1500b_value(self):
        # 100 GbE, 1500B + 20B framing -> ~8.2 Mpps.
        assert bluefield2_spec().line_rate_mpps(1500) == pytest.approx(8.22, abs=0.05)

    def test_line_rate_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            bluefield2_spec().line_rate_mpps(0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            NicSpecification(
                name="bad", num_cores=0, core_freq_mhz=1000, llc_bytes=1,
                dram_bandwidth_bpus=1, dram_latency_us=0.1,
                llc_hit_time_us=0.01, line_rate_gbps=10,
            )

    def test_cache_line_constant(self):
        assert CACHE_LINE_BYTES == 64


def _cpu_stage(cycles=100.0):
    return StageDemand(name="cpu", resource=Resource.CPU, cycles_pp=cycles)


def _mem_stage(reads=4.0, wss=1024.0):
    return StageDemand(
        name="mem", resource=Resource.MEMORY, reads_pp=reads, wss_bytes=wss
    )


def _accel_stage():
    return StageDemand(
        name="scan",
        resource=Resource.ACCELERATOR,
        accelerator="regex",
        requests_pp=1.0,
        bytes_per_request=100.0,
    )


class TestStageDemand:
    def test_accelerator_stage_requires_name(self):
        with pytest.raises(ConfigurationError):
            StageDemand(name="x", resource=Resource.ACCELERATOR, requests_pp=1.0)

    def test_accelerator_stage_requires_requests(self):
        with pytest.raises(ConfigurationError):
            StageDemand(
                name="x", resource=Resource.ACCELERATOR, accelerator="regex"
            )

    def test_cpu_stage_rejects_accelerator_field(self):
        with pytest.raises(ConfigurationError):
            StageDemand(name="x", resource=Resource.CPU, accelerator="regex")

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            StageDemand(name="x", resource=Resource.CPU, cycles_pp=-1.0)

    def test_mlp_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            StageDemand(name="x", resource=Resource.MEMORY, mlp=0.5)


class TestWorkloadDemand:
    def test_core_and_accel_stage_partition(self):
        demand = WorkloadDemand(
            name="w", cores=2, pattern=ExecutionPattern.PIPELINE,
            stages=(_cpu_stage(), _mem_stage(), _accel_stage()),
        )
        assert len(demand.core_stages()) == 2
        assert len(demand.accelerator_stages()) == 1

    def test_total_wss(self):
        demand = WorkloadDemand(
            name="w", cores=1, pattern=ExecutionPattern.RUN_TO_COMPLETION,
            stages=(_mem_stage(wss=1000.0), _mem_stage(wss=500.0)),
        )
        assert demand.total_wss_bytes() == 1500.0

    def test_uses_accelerator(self):
        demand = WorkloadDemand(
            name="w", cores=1, pattern=ExecutionPattern.PIPELINE,
            stages=(_cpu_stage(), _accel_stage()),
        )
        assert demand.uses_accelerator("regex")
        assert not demand.uses_accelerator("compression")

    def test_queue_default_is_one(self):
        demand = WorkloadDemand(
            name="w", cores=1, pattern=ExecutionPattern.PIPELINE,
            stages=(_accel_stage(), _cpu_stage()),
        )
        assert demand.queues_for("regex") == 1

    def test_closed_loop_flag(self):
        open_loop = WorkloadDemand(
            name="w", cores=1, pattern=ExecutionPattern.PIPELINE,
            stages=(_cpu_stage(),), arrival_rate_mpps=1.0,
        )
        closed = WorkloadDemand(
            name="w", cores=1, pattern=ExecutionPattern.PIPELINE,
            stages=(_cpu_stage(),),
        )
        assert not open_loop.is_closed_loop
        assert closed.is_closed_loop

    def test_rejects_empty_stages(self):
        with pytest.raises(ConfigurationError):
            WorkloadDemand(
                name="w", cores=1, pattern=ExecutionPattern.PIPELINE, stages=()
            )

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            WorkloadDemand(
                name="w", cores=0, pattern=ExecutionPattern.PIPELINE,
                stages=(_cpu_stage(),),
            )

    def test_rejects_nonpositive_arrival(self):
        with pytest.raises(ConfigurationError):
            WorkloadDemand(
                name="w", cores=1, pattern=ExecutionPattern.PIPELINE,
                stages=(_cpu_stage(),), arrival_rate_mpps=0.0,
            )

    def test_rejects_bad_hot_fraction(self):
        with pytest.raises(ConfigurationError):
            WorkloadDemand(
                name="w", cores=1, pattern=ExecutionPattern.PIPELINE,
                stages=(_cpu_stage(),), hot_access_fraction=1.0,
            )

    def test_rejects_bad_queue_count(self):
        with pytest.raises(ConfigurationError):
            WorkloadDemand(
                name="w", cores=1, pattern=ExecutionPattern.PIPELINE,
                stages=(_accel_stage(), _cpu_stage()),
                queues_per_accelerator={"regex": 0},
            )
