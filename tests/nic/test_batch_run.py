"""Equivalence tests: ``SmartNic.run_batch`` == looped ``run``, bit for bit.

The batch engine's contract is that batching is never a numerical
change: throughputs (measured *and* noiseless), counters, stage
reports, bottleneck labels, iteration counts, DRAM utilisation and the
seeded measurement noise must be exactly the scalar solver's. These
tests sweep execution patterns, accelerator mixes, bench shapes, batch
sizes and error cases against the seed solver as the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlacementError, SimulationError
from repro.nf.catalog import EVALUATION_NF_NAMES, make_nf
from repro.nf.synthetic import nf1, nf2
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec, pensando_spec
from repro.nic.workload import ExecutionPattern
from repro.profiling.contention import ContentionLevel, random_contention
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile


def assert_identical(loop_result, batch_result, label=""):
    """Assert two RunResults are bit-for-bit identical."""
    assert batch_result.iterations == loop_result.iterations, label
    assert batch_result.dram_utilisation == loop_result.dram_utilisation, label
    assert set(batch_result.workloads) == set(loop_result.workloads), label
    for name in loop_result.workloads:
        a = loop_result[name]
        b = batch_result[name]
        assert b.throughput_mpps == a.throughput_mpps, (label, name)
        assert b.true_throughput_mpps == a.true_throughput_mpps, (label, name)
        assert b.miss_ratio == a.miss_ratio, (label, name)
        assert b.llc_occupancy_bytes == a.llc_occupancy_bytes, (label, name)
        assert b.bottleneck == a.bottleneck, (label, name)
        assert b.counters == a.counters, (label, name)
        assert b.stages == a.stages, (label, name)


def random_profiling_scenario(nic, rng, index):
    """One profiling-shaped scenario: target NF + bench contention."""
    target = make_nf(str(rng.choice(EVALUATION_NF_NAMES)))
    level = random_contention(
        seed=rng,
        memory=True,
        regex=index % 3 == 0,
        compression=index % 5 == 0,
    )
    traffic = TrafficProfile(
        flow_count=int(rng.integers(1_000, 300_000)),
        packet_size=int(rng.integers(64, 1500)),
        mtbr=float(rng.uniform(0.0, 1100.0)),
    )
    return [target.demand(traffic)] + level.benches(nic.spec.num_cores - 2)


class TestRunBatchEquivalence:
    def test_profiling_shaped_sweep(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        rng = make_rng(7)
        scenarios = [random_profiling_scenario(nic, rng, i) for i in range(25)]
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"scenario {i}")

    def test_nf_colocations(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        rng = make_rng(11)
        traffic = TrafficProfile()
        scenarios = []
        for _ in range(12):
            demands = [make_nf("flowstats").demand(traffic)]
            for j in range(int(rng.integers(1, 4))):
                name = str(rng.choice(EVALUATION_NF_NAMES))
                demands.append(
                    make_nf(name).demand(traffic, instance=f"{name}#{j}")
                )
            scenarios.append(demands)
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"colocation {i}")

    @pytest.mark.parametrize(
        "pattern",
        [ExecutionPattern.PIPELINE, ExecutionPattern.RUN_TO_COMPLETION],
    )
    def test_synthetic_patterns_with_accelerators(self, pattern):
        """Both execution patterns, both accelerators, mixed benches."""
        nic = SmartNic(bluefield2_spec(), seed=5)
        rng = make_rng(13)
        traffic = TrafficProfile()
        scenarios = []
        for builder in (nf1, nf2):
            for _ in range(5):
                level = random_contention(
                    seed=rng, memory=True, regex=True, compression=True
                )
                scenarios.append(
                    [builder(pattern).demand(traffic)] + level.benches(6)
                )
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"{pattern} {i}")

    def test_mixed_convergence_batch(self):
        """Fast- and slow-converging scenarios in one batch.

        Heavy DRAM-feedback mixes need 2-3x the iterations of light
        ones; the per-scenario masks must freeze finished scenarios at
        exactly the iteration the scalar solver stops at.
        """
        nic = SmartNic(bluefield2_spec(), seed=3)
        rng = make_rng(17)
        traffic = TrafficProfile()
        scenarios = []
        for i in range(8):
            light = ContentionLevel(mem_car=10.0, mem_wss_mb=1.0)
            heavy = ContentionLevel(
                mem_car=float(rng.uniform(200.0, 260.0)),
                mem_wss_mb=float(rng.uniform(8.0, 12.0)),
                regex_rate=1.5,
            )
            level = light if i % 2 == 0 else heavy
            scenarios.append(
                [make_nf("flowmonitor").demand(traffic)] + level.benches(6)
            )
        batch = nic.run_batch(scenarios)
        iteration_counts = {result.iterations for result in batch}
        assert len(iteration_counts) > 1, "expected a convergence spread"
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"mixed {i}")

    def test_many_clients_on_one_engine(self):
        """>=3 clients sharing one accelerator engine stay bit-exact.

        Regression: the scalar ``capacity_for`` allocates
        ``[saturated_target] + competitors``, so its weight fold starts
        with the target's term; accumulating in engine order instead
        diverged by 1 ulp whenever the target sat at client position
        >= 2 with two saturated competitors.
        """
        nic = SmartNic(bluefield2_spec(), seed=31)
        traffic = TrafficProfile()
        scenarios = []
        for extra in (ContentionLevel(regex_rate=3.0, regex_mtbr=900.0),
                      ContentionLevel(regex_rate=0.3, regex_mtbr=300.0)):
            demands = [
                nf1(ExecutionPattern.RUN_TO_COMPLETION).demand(
                    traffic, instance=f"nf1#{i}"
                )
                for i in range(3)
            ]
            scenarios.append(demands + extra.benches(2))
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"many-clients {i}")

    def test_pensando_spec(self):
        nic = SmartNic(pensando_spec(), seed=9)
        rng = make_rng(19)
        traffic = TrafficProfile()
        scenarios = []
        for i in range(8):
            level = random_contention(seed=rng, memory=True, regex=i % 2 == 0)
            scenarios.append(
                [make_nf("flowstats").demand(traffic)] + level.benches(14)
            )
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"pensando {i}")

    def test_noise_disabled(self):
        nic = SmartNic(bluefield2_spec(), seed=1, noise_std=0.0)
        rng = make_rng(23)
        scenarios = [random_profiling_scenario(nic, rng, i) for i in range(6)]
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            result = batch[i]
            assert_identical(nic.run(scenario), result, f"noiseless {i}")
            for workload in result.workloads.values():
                assert workload.throughput_mpps == workload.true_throughput_mpps

    def test_batch_size_invariance(self):
        """Splitting a batch differently never changes any scenario."""
        nic = SmartNic(bluefield2_spec(), seed=123)
        rng = make_rng(29)
        scenarios = [random_profiling_scenario(nic, rng, i) for i in range(12)]
        whole = nic.run_batch(scenarios)
        singletons = [nic.run_batch([s])[0] for s in scenarios]
        halves = nic.run_batch(scenarios[:6]) + nic.run_batch(scenarios[6:])
        for i in range(len(scenarios)):
            assert_identical(whole[i], singletons[i], f"singleton {i}")
            assert_identical(whole[i], halves[i], f"half {i}")

    def test_run_fast_matches_run(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        scenario = [make_nf("nids").demand(TrafficProfile())] + ContentionLevel(
            mem_car=120.0
        ).benches(6)
        assert_identical(nic.run(scenario), nic.run_fast(scenario))

    def test_open_loop_arrival_rates(self):
        """Open-loop workloads (finite arrival rate) stay bit-identical."""
        nic = SmartNic(bluefield2_spec(), seed=123)
        traffic = TrafficProfile()
        demand = make_nf("flowstats").demand(traffic)
        capped = type(demand)(
            name=demand.name,
            cores=demand.cores,
            pattern=demand.pattern,
            stages=demand.stages,
            arrival_rate_mpps=0.2,
            queues_per_accelerator=dict(demand.queues_per_accelerator),
            packet_size_bytes=demand.packet_size_bytes,
            hot_access_fraction=demand.hot_access_fraction,
            hot_wss_fraction=demand.hot_wss_fraction,
        )
        scenario = [capped] + ContentionLevel(mem_car=80.0).benches(6)
        batch = nic.run_batch([scenario])
        assert_identical(nic.run(scenario), batch[0])


class TestRunBatchErrors:
    def test_validation_errors_match_run(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        traffic = TrafficProfile()
        too_many = [
            make_nf(name).demand(traffic, instance=f"x#{i}")
            for i, name in enumerate(EVALUATION_NF_NAMES[:5])
        ]
        duplicate = [make_nf("acl").demand(traffic)] * 2
        good = [make_nf("acl").demand(traffic)]
        results = nic.run_batch(
            [good, too_many, duplicate, []], on_error="return"
        )
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], PlacementError)
        assert isinstance(results[2], SimulationError)
        assert isinstance(results[3], SimulationError)
        with pytest.raises(PlacementError):
            nic.run(too_many)
        with pytest.raises(SimulationError):
            nic.run(duplicate)

    def test_raise_mode_raises_first_error(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        traffic = TrafficProfile()
        too_many = [
            make_nf(name).demand(traffic, instance=f"x#{i}")
            for i, name in enumerate(EVALUATION_NF_NAMES[:5])
        ]
        with pytest.raises(PlacementError):
            nic.run_batch([[make_nf("acl").demand(traffic)], too_many])

    def test_unknown_on_error_mode(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        with pytest.raises(SimulationError):
            nic.run_batch([], on_error="ignore")

    def test_empty_batch(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        assert nic.run_batch([]) == []


class TestNoiseDeterminism:
    def test_noise_matches_scalar_seed_derivation(self):
        """Measured noise is a function of (nic seed, workload set)."""
        spec = bluefield2_spec()
        scenario = [make_nf("acl").demand(TrafficProfile())] + ContentionLevel(
            mem_car=60.0
        ).benches(6)
        first = SmartNic(spec, seed=42).run_batch([scenario])[0]
        second = SmartNic(spec, seed=42).run([scenario[0]] + scenario[1:])
        assert_identical(second, first)
        other_seed = SmartNic(spec, seed=43).run_batch([scenario])[0]
        assert (
            other_seed["acl"].throughput_mpps != first["acl"].throughput_mpps
        )
        assert (
            other_seed["acl"].true_throughput_mpps
            == first["acl"].true_throughput_mpps
        )


class TestBatchedSums:
    def test_row_sums_match_1d_sums(self):
        """The occupancy reduction relies on axis-sum == per-row sum."""
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 7, 8, 9, 15, 16, 33, 129):
            block = rng.uniform(1e-9, 1e3, size=(13, n))
            assert np.array_equal(
                block.sum(axis=1),
                np.array([block[i].sum() for i in range(len(block))]),
            )


class TestPaddedSuperGroups:
    """Small signature groups merge into padded super-groups, bit-exact."""

    #: Structurally diverse mixes (A = table-driven, B = regex user) with
    #: at most two scenarios per signature, so every group is below the
    #: scalar-fallback threshold and must merge to vectorize at all.
    MIXES = [
        ("flowstats", "nat", "nids", "acl"),
        ("flowstats", "nids", "nat", "acl"),
        ("nids", "flowstats", "nat", "acl"),
        ("flowstats", "nat", "acl", "nids"),
        ("flowstats", "nids", "nat"),
        ("nids", "flowstats", "nat"),
        ("flowstats", "nat"),
        ("flowstats", "nids"),
        ("nids", "nat"),
        ("flowstats",),
        ("nids",),
        ("flowmonitor", "ipcomp"),  # compression engine in the mix
    ]

    def _scenarios(self, rng):
        scenarios = []
        for mix in self.MIXES:
            for _ in range(2):
                traffic_set = [
                    TrafficProfile(int(rng.integers(5_000, 400_000)), 1500, 600.0)
                    for _ in mix
                ]
                scenarios.append(
                    [
                        make_nf(name).demand(traffic, instance=f"{name}#{j}")
                        for j, (name, traffic) in enumerate(zip(mix, traffic_set))
                    ]
                )
        return scenarios

    def test_padded_merge_matches_scalar_oracle(self):
        nic = SmartNic(bluefield2_spec(), seed=123)
        scenarios = self._scenarios(make_rng(31))
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"padded {i}")

    def test_padded_merge_matches_disabled_padding(self):
        from repro.nic.batch import solve_batch

        nic = SmartNic(pensando_spec(), seed=9)
        scenarios = [s for s in self._scenarios(make_rng(5)) if all(
            stage.accelerator in (None, "regex")
            for demand in s
            for stage in demand.stages
        )]
        padded = solve_batch(nic, scenarios, pad_small_groups=True)
        scalar = solve_batch(nic, scenarios, pad_small_groups=False)
        for i in range(len(scenarios)):
            assert_identical(scalar[i], padded[i], f"scenario {i}")

    def test_padding_engages_on_this_workload(self):
        """The merge must actually form padded families here (the
        equivalence above would pass vacuously on the scalar path)."""
        from repro.nic.batch import (
            _SCALAR_FALLBACK_GROUP_SIZE,
            _ScenarioPlan,
            _merge_small_groups,
        )

        nic = SmartNic(bluefield2_spec(), seed=123)
        groups = {}
        for i, scenario in enumerate(self._scenarios(make_rng(31))):
            plan = _ScenarioPlan(nic, scenario)
            plans, indices = groups.setdefault(plan.signature, ([], []))
            plans.append(plan)
            indices.append(i)
        small = [
            (sig, plans, indices)
            for sig, (plans, indices) in groups.items()
            if len(plans) < _SCALAR_FALLBACK_GROUP_SIZE
        ]
        assert len(small) >= 10  # the workload is genuinely fragmented
        merged, leftovers = _merge_small_groups(small)
        merged_rows = sum(
            len(plans) for _, members in merged for _, plans, _ in members
        )
        assert merged_rows >= 16  # most scenarios vectorize via padding
        for super_sig, members in merged:
            for sig, _, _ in members:
                assert len(sig) <= len(super_sig)

    def test_embedding_helper(self):
        from repro.nic.batch import _embed_signature, _shortest_supersequence

        assert _embed_signature(("a", "b"), ("a", "x", "b")) == [0, 2]
        assert _embed_signature(("a", "a"), ("a", "b", "a")) == [0, 2]
        assert _embed_signature(("b", "a"), ("a", "b")) is None
        assert _embed_signature((), ("a",)) == []
        scs = _shortest_supersequence(("a", "b", "a"), ("b", "a", "b"))
        assert _embed_signature(("a", "b", "a"), scs) is not None
        assert _embed_signature(("b", "a", "b"), scs) is not None
        assert len(scs) <= 4

    def test_mixed_sizes_with_convergence_stragglers(self):
        """Solos merged with slow multi-NF mixes keep scalar iteration
        counts (dummy lanes never perturb a row's residual stream)."""
        nic = SmartNic(bluefield2_spec(), seed=77)
        traffic = TrafficProfile()
        scenarios = [
            [make_nf("nids").demand(traffic, instance="nids#0")],
            [
                make_nf("nids").demand(traffic, instance="nids#0"),
                make_nf("nids").demand(traffic, instance="nids#1"),
                make_nf("flowstats").demand(traffic, instance="flowstats#2"),
            ],
            [
                make_nf("flowstats").demand(traffic, instance="flowstats#0"),
                make_nf("nids").demand(traffic, instance="nids#1"),
            ],
        ]
        batch = nic.run_batch(scenarios)
        for i, scenario in enumerate(scenarios):
            assert_identical(nic.run(scenario), batch[i], f"straggler {i}")
