"""Property-based invariants of the SmartNIC simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nf.catalog import make_nf
from repro.nf.synthetic import mem_bench, regex_bench
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile

_nic = SmartNic(bluefield2_spec(), seed=3, noise_std=0.0)
_solo_cache: dict = {}


def _solo(name: str, traffic: TrafficProfile) -> float:
    key = (name, traffic)
    if key not in _solo_cache:
        _solo_cache[key] = _nic.run_solo(
            make_nf(name).demand(traffic)
        ).throughput_mpps
    return _solo_cache[key]


class TestSimulatorInvariants:
    @given(
        car=st.floats(min_value=0.1, max_value=260.0),
        wss=st.floats(min_value=1.0, max_value=12.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_contention_never_helps(self, car, wss):
        """Co-location can only reduce (or keep) an NF's throughput."""
        traffic = TrafficProfile()
        result = _nic.run(
            [make_nf("flowstats").demand(traffic), mem_bench(car, wss_mb=wss)]
        )
        assert (
            result.throughput_of("flowstats")
            <= _solo("flowstats", traffic) * 1.0001
        )

    @given(
        flows=st.integers(min_value=1_000, max_value=500_000),
        packet=st.integers(min_value=64, max_value=1500),
        mtbr=st.floats(min_value=0.0, max_value=1100.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_throughput_positive_and_below_line_rate(self, flows, packet, mtbr):
        traffic = TrafficProfile(flows, packet, mtbr)
        result = _nic.run_solo(make_nf("flowmonitor").demand(traffic))
        assert 0.0 < result.throughput_mpps
        assert result.throughput_mpps <= _nic.spec.line_rate_mpps(packet) * 1.0001

    @given(rate=st.floats(min_value=0.05, max_value=3.0))
    @settings(max_examples=15, deadline=None)
    def test_regex_contention_monotone(self, rate):
        """More regex-bench load never increases NIDS throughput."""
        traffic = TrafficProfile()
        lighter = _nic.run(
            [make_nf("nids").demand(traffic), regex_bench(rate * 0.5, mtbr=900.0)]
        ).throughput_of("nids")
        heavier = _nic.run(
            [make_nf("nids").demand(traffic), regex_bench(rate, mtbr=900.0)]
        ).throughput_of("nids")
        assert heavier <= lighter * 1.001

    @given(
        flows=st.integers(min_value=1_000, max_value=400_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_more_flows_never_speed_up_flowstats(self, flows):
        traffic_small = TrafficProfile(flows, 1500, 600.0)
        traffic_big = TrafficProfile(min(flows * 2, 500_000), 1500, 600.0)
        fast = _solo("flowstats", traffic_small)
        slow = _solo("flowstats", traffic_big)
        assert slow <= fast * 1.001

    @given(mtbr=st.floats(min_value=0.0, max_value=900.0))
    @settings(max_examples=15, deadline=None)
    def test_higher_mtbr_never_speeds_up_nids(self, mtbr):
        low = _solo("nids", TrafficProfile(16_000, 1500, mtbr))
        high = _solo("nids", TrafficProfile(16_000, 1500, mtbr + 200.0))
        assert high <= low * 1.001

    @given(
        car=st.floats(min_value=10.0, max_value=250.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_all_colocated_results_positive(self, car):
        traffic = TrafficProfile()
        result = _nic.run(
            [
                make_nf("flowmonitor").demand(traffic),
                make_nf("nat").demand(traffic),
                mem_bench(car),
            ]
        )
        for workload in result.workloads.values():
            assert workload.throughput_mpps > 0.0
