"""Unit tests for the shared memory-subsystem model."""

import pytest

from repro.errors import ConfigurationError
from repro.nic.memory import MemoryActor, MemorySubsystem
from repro.nic.spec import bluefield2_spec

MB = 1024 * 1024


@pytest.fixture()
def memory() -> MemorySubsystem:
    return MemorySubsystem(bluefield2_spec())


def _actor(name="a", read=50.0, write=10.0, wss=2 * MB, hot=0.0):
    return MemoryActor(
        name=name, read_rate=read, write_rate=write, wss_bytes=wss,
        hot_access_fraction=hot,
    )


class TestMemoryActor:
    def test_car_is_read_plus_write(self):
        assert _actor(read=30.0, write=20.0).access_rate == 50.0

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            MemoryActor(name="a", read_rate=-1.0, write_rate=0.0, wss_bytes=1.0)

    def test_rejects_bad_hot_fraction(self):
        with pytest.raises(ConfigurationError):
            MemoryActor(
                name="a", read_rate=1.0, write_rate=0.0, wss_bytes=1.0,
                hot_access_fraction=1.5,
            )


class TestOccupancy:
    def test_single_actor_gets_its_working_set(self, memory):
        occupancy = memory.solve_occupancy([_actor(wss=1 * MB)])
        assert occupancy["a"] == pytest.approx(1 * MB)

    def test_single_actor_capped_by_llc(self, memory):
        occupancy = memory.solve_occupancy([_actor(wss=20 * MB)])
        assert occupancy["a"] <= bluefield2_spec().llc_bytes + 1.0

    def test_total_occupancy_never_exceeds_llc(self, memory):
        actors = [_actor(f"a{i}", wss=4 * MB) for i in range(4)]
        occupancy = memory.solve_occupancy(actors)
        assert sum(occupancy.values()) <= bluefield2_spec().llc_bytes * 1.0001

    def test_idle_actor_gets_nothing(self, memory):
        occupancy = memory.solve_occupancy(
            [_actor("busy"), MemoryActor("idle", 0.0, 0.0, 1 * MB)]
        )
        assert occupancy["idle"] == 0.0

    def test_small_set_fully_resident_next_to_modest_competitor(self, memory):
        occupancy = memory.solve_occupancy(
            [_actor("small", read=40.0, wss=int(0.5 * MB)), _actor("big", read=40.0, wss=4 * MB)]
        )
        assert occupancy["small"] == pytest.approx(0.5 * MB, rel=0.01)

    def test_faster_actor_gets_more(self, memory):
        occupancy = memory.solve_occupancy(
            [
                _actor("fast", read=200.0, wss=8 * MB),
                _actor("slow", read=20.0, wss=8 * MB),
            ]
        )
        assert occupancy["fast"] > occupancy["slow"]


class TestMissRatio:
    def test_resident_set_has_base_miss(self, memory):
        base = bluefield2_spec().base_miss_ratio
        assert memory.miss_ratio(1 * MB, 1 * MB) == pytest.approx(base)

    def test_zero_occupancy_misses_everything(self, memory):
        assert memory.miss_ratio(1 * MB, 0.0) == pytest.approx(1.0)

    def test_monotone_in_occupancy(self, memory):
        worse = memory.miss_ratio(4 * MB, 1 * MB)
        better = memory.miss_ratio(4 * MB, 3 * MB)
        assert better < worse

    def test_hot_set_shielding_reduces_misses(self, memory):
        uniform = memory.miss_ratio(4 * MB, 1 * MB, hot_access_fraction=0.0)
        shielded = memory.miss_ratio(
            4 * MB, 1 * MB, hot_access_fraction=0.6, hot_wss_fraction=0.15
        )
        assert shielded < uniform

    def test_zero_wss_returns_base(self, memory):
        assert memory.miss_ratio(0.0, 0.0) == bluefield2_spec().base_miss_ratio


class TestSolve:
    def test_access_time_grows_with_competition(self, memory):
        solo = memory.solve([_actor("a", wss=4 * MB)])["a"].avg_access_time_us
        contended = memory.solve(
            [_actor("a", wss=4 * MB), _actor("b", read=250.0, wss=10 * MB)]
        )["a"].avg_access_time_us
        assert contended > solo

    def test_dram_traffic_accounts_writebacks(self, memory):
        shares = memory.solve([_actor("a", read=100.0, write=0.0, wss=10 * MB)])
        share = shares["a"]
        assert share.dram_write_rate > 0.0  # write-backs even for reads

    def test_utilisation_bounded(self, memory):
        actors = [_actor(f"a{i}", read=300.0, wss=12 * MB) for i in range(3)]
        assert memory.dram_utilisation(actors) <= 0.97

    def test_utilisation_zero_without_traffic(self, memory):
        assert memory.dram_utilisation(
            [MemoryActor("idle", 0.0, 0.0, 1 * MB)]
        ) == pytest.approx(0.0, abs=1e-9)

    def test_access_time_at_least_hit_time(self, memory):
        shares = memory.solve([_actor("a", wss=int(0.1 * MB))])
        assert shares["a"].avg_access_time_us >= bluefield2_spec().llc_hit_time_us
