"""Unit tests for deterministic RNG utilities."""

import numpy as np

from repro.rng import DEFAULT_SEED, derive_seed, make_rng, spawn


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_different_seeds_differ(self):
        assert make_rng(5).random() != make_rng(6).random()

    def test_none_uses_default_seed(self):
        assert make_rng(None).random() == make_rng(DEFAULT_SEED).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(make_rng(3), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_is_deterministic(self):
        a = [c.random() for c in spawn(make_rng(3), 2)]
        b = [c.random() for c in spawn(make_rng(3), 2)]
        assert a == b


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x", 2.0) == derive_seed(1, "x", 2.0)

    def test_sensitive_to_components(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_result_in_valid_range(self):
        seed = derive_seed(123, "anything", 4.5, (1, 2))
        assert 0 <= seed < 2**63
