"""Unit tests for the NF framework, elements, catalog and benches."""

import pytest

from repro.errors import ConfigurationError
from repro.nf.catalog import (
    EVALUATION_NF_NAMES,
    NF_CATALOG,
    all_nf_names,
    make_nf,
    traffic_sensitive_nf_names,
)
from repro.nf.elements import (
    CompressStage,
    FixedTable,
    HashTable,
    HeaderParse,
    PacketCopy,
    PacketIo,
    RegexScan,
)
from repro.nf.framework import NetworkFunction
from repro.nf.synthetic import (
    compression_bench,
    mem_bench,
    nf1,
    nf2,
    pipeline_probe_nf,
    regex_bench,
    regex_nf,
    rtc_probe_nf,
)
from repro.nic.workload import ExecutionPattern, Resource
from repro.traffic.profile import TrafficProfile

TRAFFIC = TrafficProfile()


class TestElements:
    def test_packet_io_is_cpu(self):
        demand = PacketIo(cycles=500.0).demand(TRAFFIC)
        assert demand.resource is Resource.CPU
        assert demand.cycles_pp == 500.0

    def test_hash_table_wss_grows_with_flows(self):
        table = HashTable("t", entry_bytes=64.0, reads_pp=4.0, writes_pp=1.0)
        small = table.demand(TrafficProfile(1_000, 1500, 0.0))
        large = table.demand(TrafficProfile(100_000, 1500, 0.0))
        assert large.wss_bytes - small.wss_bytes == pytest.approx(64.0 * 99_000)

    def test_fixed_table_wss_constant(self):
        table = FixedTable("t", wss_bytes=1024.0, reads_pp=2.0)
        a = table.demand(TrafficProfile(1_000, 1500, 0.0))
        b = table.demand(TrafficProfile(500_000, 1500, 0.0))
        assert a.wss_bytes == b.wss_bytes == 1024.0

    def test_packet_copy_scales_with_packet_size(self):
        copy = PacketCopy("c", bytes_fraction=1.0)
        small = copy.demand(TrafficProfile(100, 64, 0.0))
        large = copy.demand(TrafficProfile(100, 1500, 0.0))
        assert large.reads_pp > small.reads_pp

    def test_regex_scan_matches_follow_mtbr(self):
        scan = RegexScan(payload_fraction=1.0)
        demand = scan.demand(TrafficProfile(100, 1054, 1000.0))
        assert demand.matches_per_request == pytest.approx(1.0)
        assert demand.accelerator == "regex"

    def test_regex_scan_partial_payload(self):
        scan = RegexScan(payload_fraction=0.5)
        demand = scan.demand(TrafficProfile(100, 1054, 1000.0))
        assert demand.bytes_per_request == pytest.approx(500.0)

    def test_compress_stage_targets_compression(self):
        demand = CompressStage().demand(TRAFFIC)
        assert demand.accelerator == "compression"

    def test_header_parse_per_byte_cycles(self):
        parse = HeaderParse(cycles=100.0, cycles_per_byte=1.0)
        demand = parse.demand(TrafficProfile(100, 200, 0.0))
        assert demand.cycles_pp == pytest.approx(300.0)

    def test_invalid_element_parameters(self):
        with pytest.raises(ConfigurationError):
            PacketIo(cycles=0.0)
        with pytest.raises(ConfigurationError):
            RegexScan(payload_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HashTable("t", entry_bytes=0.0, reads_pp=1.0, writes_pp=0.0)


class TestNetworkFunction:
    def test_adjacent_same_resource_stages_merged(self):
        nf = make_nf("flowstats")
        stages = nf.stages(TRAFFIC)
        # io + parse merge into one CPU stage, table stays MEMORY.
        assert [s.resource for s in stages] == [Resource.CPU, Resource.MEMORY]

    def test_nids_merges_two_memory_elements(self):
        stages = make_nf("nids").stages(TRAFFIC)
        resources = [s.resource for s in stages]
        assert resources == [Resource.CPU, Resource.MEMORY, Resource.ACCELERATOR]

    def test_demand_uses_instance_name(self):
        demand = make_nf("acl").demand(TRAFFIC, instance="acl-7")
        assert demand.name == "acl-7"

    def test_demand_packet_size_from_profile(self):
        demand = make_nf("acl").demand(TrafficProfile(100, 256, 0.0))
        assert demand.packet_size_bytes == 256.0

    def test_uses_accelerators(self):
        assert make_nf("flowmonitor").uses_accelerators() == ["regex"]
        assert make_nf("ipcomp").uses_accelerators() == ["regex", "compression"]
        assert make_nf("acl").uses_accelerators() == []

    def test_with_pattern_copy(self):
        nf = make_nf("flowstats").with_pattern(ExecutionPattern.PIPELINE)
        assert nf.pattern is ExecutionPattern.PIPELINE
        assert make_nf("flowstats").pattern is ExecutionPattern.RUN_TO_COMPLETION

    def test_with_cores_copy(self):
        assert make_nf("acl").with_cores(4).cores == 4

    def test_rejects_unknown_framework(self):
        with pytest.raises(ConfigurationError):
            NetworkFunction(
                name="x", framework="ebpf",
                pattern=ExecutionPattern.PIPELINE,
                elements=(PacketIo(),),
            )

    def test_rejects_empty_elements(self):
        with pytest.raises(ConfigurationError):
            NetworkFunction(
                name="x", framework="click",
                pattern=ExecutionPattern.PIPELINE, elements=(),
            )


class TestCatalog:
    def test_table1_nf_set_present(self):
        expected = {
            "flowstats", "iprouter", "iptunnel", "nat", "flowmonitor",
            "nids", "ipcomp", "acl", "flowclassifier", "flowtracker",
            "packetfilter", "firewall",
        }
        assert set(NF_CATALOG) == expected

    def test_catalog_accelerator_metadata_matches_elements(self):
        for descriptor in NF_CATALOG.values():
            nf = descriptor.build()
            assert tuple(nf.uses_accelerators()) == descriptor.accelerators

    def test_evaluation_set_is_nine_nfs(self):
        assert len(EVALUATION_NF_NAMES) == 9
        assert "firewall" not in EVALUATION_NF_NAMES
        assert "packetfilter" not in EVALUATION_NF_NAMES

    def test_make_nf_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_nf("loadbalancer")

    def test_all_nf_names_excludes_firewall_by_default(self):
        assert "firewall" not in all_nf_names()
        assert "firewall" in all_nf_names(include_pensando=True)

    def test_traffic_sensitive_names(self):
        names = traffic_sensitive_nf_names()
        assert "flowstats" in names and "acl" not in names

    def test_frameworks_match_table1(self):
        assert NF_CATALOG["acl"].framework == "dpdk"
        assert NF_CATALOG["flowtracker"].framework == "doca"
        assert NF_CATALOG["flowmonitor"].framework == "click"

    def test_builders_produce_fresh_instances(self):
        assert make_nf("nat") is not make_nf("nat")


class TestSyntheticBenches:
    def test_mem_bench_is_open_loop_with_target_car(self):
        bench = mem_bench(128.0, wss_mb=8.0)
        refs_pp = sum(s.reads_pp + s.writes_pp for s in bench.stages)
        assert bench.arrival_rate_mpps * refs_pp == pytest.approx(128.0)
        assert bench.total_wss_bytes() == 8.0 * 1024 * 1024

    def test_mem_bench_no_reuse_locality(self):
        assert mem_bench(50.0).hot_access_fraction == 0.0

    def test_regex_bench_closed_loop_mode(self):
        assert regex_bench(None).is_closed_loop
        assert not regex_bench(1.0).is_closed_loop

    def test_regex_bench_matches_config(self):
        bench = regex_bench(1.0, mtbr=500.0, payload_bytes=1000.0)
        stage = bench.accelerator_stages()[0]
        assert stage.matches_per_request == pytest.approx(0.5)

    def test_compression_bench_uses_compression(self):
        bench = compression_bench(1.0, payload_bytes=2048.0)
        assert bench.uses_accelerator("compression")

    def test_regex_nf_fixed_request_size(self):
        nf = regex_nf(mtbr=194.0, payload_bytes=32.0)
        stage = nf.demand(TrafficProfile(1_000, 86, 194.0)).accelerator_stages()[0]
        assert stage.bytes_per_request == 32.0

    def test_nf1_nf2_patterns(self):
        assert nf1(ExecutionPattern.PIPELINE).pattern is ExecutionPattern.PIPELINE
        assert nf2().uses_accelerators() == ["regex", "compression"]
        assert nf1().uses_accelerators() == ["regex"]

    def test_probe_nfs_have_expected_patterns(self):
        assert pipeline_probe_nf().pattern is ExecutionPattern.PIPELINE
        assert rtc_probe_nf().pattern is ExecutionPattern.RUN_TO_COMPLETION

    def test_bench_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            mem_bench(-1.0)
        with pytest.raises(ConfigurationError):
            regex_bench(-0.5)
