"""Tests for the scheduling and diagnosis use cases."""

import pytest

from repro.errors import ConfigurationError
from repro.nf.catalog import make_nf
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile
from repro.usecases.diagnosis import BottleneckDiagnoser
from repro.usecases.scheduling import (
    NfArrival,
    PlacementOutcome,
    Scheduler,
    random_arrivals,
)

TRAFFIC = TrafficProfile()


class TestArrivals:
    def test_random_arrivals_deterministic(self):
        a = random_arrivals(10, seed=1)
        b = random_arrivals(10, seed=1)
        assert a == b

    def test_sla_in_requested_range(self):
        for arrival in random_arrivals(50, seed=2, sla_range=(0.05, 0.20)):
            assert 0.05 <= arrival.sla_drop_fraction <= 0.20

    def test_rejects_bad_sla(self):
        with pytest.raises(ConfigurationError):
            NfArrival(nf_name="acl", sla_drop_fraction=0.0)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            random_arrivals(0)


class TestPlacementOutcome:
    def test_violation_rate(self):
        outcome = PlacementOutcome(
            strategy="x", nics_used=5, violations=2, total_nfs=10
        )
        assert outcome.violation_rate_pct == 20.0

    def test_wastage(self):
        outcome = PlacementOutcome(
            strategy="x", nics_used=6, violations=0, total_nfs=10
        )
        assert outcome.wastage_pct(5) == pytest.approx(20.0)

    def test_negative_wastage_possible(self):
        outcome = PlacementOutcome(
            strategy="x", nics_used=4, violations=0, total_nfs=10
        )
        assert outcome.wastage_pct(5) < 0.0


@pytest.fixture(scope="module")
def scheduler(small_system):
    from repro.core.slomo import SlomoPredictor

    slomo = {}
    for name in small_system.trained_names:
        predictor = SlomoPredictor(name, seed=5)
        predictor.train(small_system.collector, make_nf(name), n_samples=120)
        slomo[name] = predictor
    return Scheduler(small_system, slomo_predictors=slomo)


def _arrivals(count=8, seed=3):
    return random_arrivals(
        count, seed=seed, nf_names=("flowmonitor", "flowstats", "nids")
    )


class TestScheduler:
    def test_monopolization_one_nf_per_nic(self, scheduler):
        arrivals = _arrivals(6)
        outcome = scheduler.place(arrivals, "monopolization")
        assert outcome.nics_used == 6
        assert outcome.violations == 0

    def test_yala_packs_tighter_than_monopolization(self, scheduler):
        arrivals = _arrivals(8)
        mono = scheduler.place(arrivals, "monopolization")
        yala = scheduler.place(arrivals, "yala")
        assert yala.nics_used < mono.nics_used

    def test_yala_low_violations(self, scheduler):
        arrivals = _arrivals(10)
        outcome = scheduler.place(arrivals, "yala")
        assert outcome.violation_rate_pct <= 20.0

    def test_greedy_packs_to_capacity(self, scheduler):
        arrivals = _arrivals(8)
        outcome = scheduler.place(arrivals, "greedy")
        assert outcome.nics_used <= 4  # 4 NFs per 8-core NIC max

    def test_assignments_cover_all_arrivals(self, scheduler):
        arrivals = _arrivals(7)
        outcome = scheduler.place(arrivals, "yala")
        placed = sorted(i for nic in outcome.assignments for i in nic)
        assert placed == list(range(7))

    def test_oracle_at_most_monopolization(self, scheduler):
        arrivals = _arrivals(6)
        assert scheduler.oracle_nics(arrivals) <= 6

    def test_unknown_strategy_rejected(self, scheduler):
        with pytest.raises(ConfigurationError):
            scheduler.place(_arrivals(2), "random")

    def test_evaluate_aggregates(self, scheduler):
        sequences = [_arrivals(6, seed=1), _arrivals(6, seed=2)]
        results = scheduler.evaluate(sequences, strategies=("monopolization", "yala"))
        assert set(results) == {"monopolization", "yala"}
        assert results["monopolization"].mean_violation_pct == 0.0
        assert results["monopolization"].mean_wastage_pct >= results[
            "yala"
        ].mean_wastage_pct


class TestDiagnosis:
    @pytest.fixture(scope="class")
    def diagnoser(self, small_system):
        predictor = small_system.predictor_of("flowmonitor")
        return BottleneckDiagnoser(small_system.collector, predictor)

    def test_ground_truth_is_resource_label(self, diagnoser):
        truth = diagnoser.ground_truth(
            make_nf("flowmonitor"),
            ContentionLevel(mem_car=240.0, regex_rate=0.8, regex_mtbr=600.0),
            TRAFFIC,
        )
        assert truth in ("cpu", "memory", "regex", "compression")

    def test_sweep_scores_bounded(self, diagnoser):
        outcome = diagnoser.sweep(
            make_nf("flowmonitor"),
            mtbr_values=[0.0, 550.0, 1100.0],
            memory_contention=ContentionLevel(mem_car=240.0, mem_wss_mb=10.0),
            regex_rate=0.8,
        )
        assert outcome.total == 3
        assert 0.0 <= outcome.yala_pct <= 100.0
        assert 0.0 <= outcome.slomo_pct <= 100.0

    def test_yala_finds_regex_at_extreme_mtbr(self, diagnoser):
        answer = diagnoser.yala_answer(
            ContentionLevel(mem_car=60.0, regex_rate=1.8, regex_mtbr=1100.0),
            TrafficProfile(16_000, 1500, 1100.0),
        )
        assert answer == "regex"

    def test_yala_finds_memory_under_pure_memory_pressure(self, diagnoser):
        answer = diagnoser.yala_answer(
            ContentionLevel(mem_car=250.0, mem_wss_mb=12.0),
            TRAFFIC,
        )
        assert answer == "memory"

    def test_empty_sweep_rejected(self, diagnoser):
        with pytest.raises(ConfigurationError):
            diagnoser.sweep(
                make_nf("flowmonitor"),
                mtbr_values=[],
                memory_contention=ContentionLevel(mem_car=100.0),
            )
