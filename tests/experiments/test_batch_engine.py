"""Batch engine equivalence: for every refactored experiment, scoring a
case list through :mod:`repro.experiments.batch` must match the seed's
per-case predict loop bit-for-bit — batching is a wall-clock change,
never a numerical one.

All checks share one smoke-scale trained context (the in-process cache
of :mod:`repro.experiments.context`).
"""

from __future__ import annotations

import pytest

from repro.core.predictor import YalaPredictor
from repro.core.slomo import SlomoPredictor
from repro.errors import ConfigurationError
from repro.experiments import (
    fig2_single_resource,
    fig3_traffic_motivation,
    table2_overall_accuracy,
    table3_multi_resource,
    table5_traffic,
    table9_pensando,
)
from repro.experiments.batch import (
    EvaluationCase,
    group_by_target,
    score_cases,
    score_cases_looped,
    score_standalone,
    score_standalone_looped,
    summarize_accuracy,
)
from repro.experiments.context import get_context
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import pensando_spec
from repro.profiling.collector import ProfilingCollector
from repro.rng import derive_seed
from repro.traffic.profile import TrafficProfile

SCALE = "smoke"


@pytest.fixture(scope="module")
def context():
    return get_context(SCALE)


def _triples(scored):
    """The raw prediction floats, for exact (bitwise) comparison."""
    return [(s.yala, s.slomo, s.slomo_raw) for s in scored]


class TestExperimentCaseLists:
    """score_cases == the seed per-case loop on every experiment."""

    def test_table2_batch_matches_loop(self, context):
        cases = table2_overall_accuracy.build_cases(context, SCALE)
        assert cases, "table2 produced no cases at smoke scale"
        assert _triples(score_cases(context, cases)) == _triples(
            score_cases_looped(context, cases)
        )

    def test_table3_batch_matches_loop(self, context):
        cases = table3_multi_resource.build_cases(context, SCALE)
        assert cases
        assert _triples(score_cases(context, cases)) == _triples(
            score_cases_looped(context, cases)
        )

    def test_table5_batch_matches_loop_including_raw_arm(self, context):
        cases = table5_traffic.build_cases(context, SCALE)
        assert cases
        assert _triples(score_cases(context, cases, slomo_raw=True)) == _triples(
            score_cases_looped(context, cases, slomo_raw=True)
        )

    def test_fig2_batch_matches_loop(self, context):
        cases = fig2_single_resource.build_cases(context, SCALE)
        assert cases
        assert _triples(score_cases(context, cases, yala=False)) == _triples(
            score_cases_looped(context, cases, yala=False)
        )

    def test_fig3_batch_matches_loop(self, context):
        cases = fig3_traffic_motivation.build_cases(context, SCALE)
        assert cases
        kwargs = dict(yala=False, slomo=False, slomo_raw=True)
        assert _triples(score_cases(context, cases, **kwargs)) == _triples(
            score_cases_looped(context, cases, **kwargs)
        )

    def test_table9_standalone_matches_loop(self):
        # Table 9 trains its own predictors on the Pensando NIC outside
        # the shared context; small budgets keep the check fast — the
        # equivalence holds for any trained pair.
        nic = SmartNic(pensando_spec(), seed=derive_seed(7, "pensando"))
        collector = ProfilingCollector(nic)
        firewall = make_nf("firewall")
        yala = YalaPredictor(firewall, collector, seed=derive_seed(7, "t9-yala"))
        yala.train(quota=100)
        slomo = SlomoPredictor("firewall", seed=derive_seed(7, "t9-slomo"))
        slomo.train(collector, firewall, n_samples=60)
        cases = table9_pensando.build_cases(collector, SCALE, seed=7)
        assert cases
        assert _triples(
            score_standalone(cases, yala=yala, slomo=slomo, slomo_raw=True)
        ) == _triples(
            score_standalone_looped(cases, yala=yala, slomo=slomo, slomo_raw=True)
        )


class TestEngineBasics:
    def test_empty_case_list(self, context):
        assert score_cases(context, []) == []
        assert score_standalone([]) == []

    def test_group_by_target_first_seen_order(self, context):
        cases = table3_multi_resource.build_cases(context, SCALE)
        groups = group_by_target(cases)
        assert list(groups) == ["nids", "flowmonitor"]
        assert sum(len(v) for v in groups.values()) == len(cases)
        # Grouping ScoredCase lists works identically.
        scored = score_cases(context, cases, slomo=False)
        assert group_by_target(scored) == groups

    def test_missing_slomo_features_rejected(self, context):
        case = EvaluationCase(
            target="nids", traffic=TrafficProfile(), truth=1.0
        )
        with pytest.raises(ConfigurationError):
            score_cases(context, [case], yala=False)

    def test_error_pct_requires_scored_prediction(self, context):
        cases = table3_multi_resource.build_cases(context, SCALE)[:1]
        scored = score_cases(context, cases, slomo=False)[0]
        assert scored.yala_error_pct >= 0.0
        with pytest.raises(ConfigurationError):
            _ = scored.slomo_error_pct

    def test_summary_matches_render_path(self, context):
        cases = table3_multi_resource.build_cases(context, SCALE)
        scored = score_cases(context, cases)
        summary = summarize_accuracy(scored)
        assert 0.0 <= summary.yala_acc5 <= summary.yala_acc10 <= 100.0
        assert 0.0 <= summary.slomo_acc5 <= summary.slomo_acc10 <= 100.0
        assert summary.yala_mape >= 0.0 and summary.slomo_mape >= 0.0
