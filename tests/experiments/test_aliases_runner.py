"""Tests for the experiment runner and figure aliases."""

import pytest

from repro.experiments import fig7_fig8_aliases
from repro.experiments.runner import EXPERIMENTS, run_experiments


class TestRunnerRegistry:
    def test_all_paper_artifacts_registered(self):
        keys = set(EXPERIMENTS)
        for artifact in (
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "table2", "table4", "table6", "table7", "table9",
        ):
            assert artifact in keys
        assert "table3+fig7a" in keys
        assert "table5+fig7b" in keys
        assert "table8+fig8" in keys

    def test_selection_by_partial_name(self):
        results = run_experiments(["fig4"], scale="smoke")
        assert "fig4" in results

    def test_selection_resolves_combined_ids(self):
        results = run_experiments(["fig7a"], scale="smoke")
        assert "table3+fig7a" in results

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], scale="smoke")


class TestAliases:
    def test_fig7a_alias_matches_table3(self):
        result = fig7_fig8_aliases.run_fig7a(scale="smoke")
        assert result.fig7a_low and result.fig7a_high

    def test_fig7b_alias_matches_table5(self):
        result = fig7_fig8_aliases.run_fig7b(scale="smoke")
        assert ("yala", "low") in result.fig7b

    def test_fig8_alias_matches_table8(self):
        result = fig7_fig8_aliases.run_fig8(scale="smoke")
        assert set(result.fig8) == {"random", "adaptive"}
