"""Tests for the experiment runner and figure aliases."""

import pytest

from repro.experiments import fig7_fig8_aliases
from repro.experiments.runner import EXPERIMENTS, main, run_experiments


class _StubResult:
    """Picklable stand-in for an experiment result."""

    def __init__(self, tag: str, scale: str) -> None:
        self.value = (tag, scale)

    def render(self) -> str:
        return f"{self.value}"


def _stub_alpha(scale="default"):
    return _StubResult("alpha", scale)


def _stub_beta(scale="default"):
    return _StubResult("beta", scale)


def _stub_gamma(scale="default"):
    return _StubResult("gamma", scale)


class TestRunnerRegistry:
    def test_all_paper_artifacts_registered(self):
        keys = set(EXPERIMENTS)
        for artifact in (
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "table2", "table4", "table6", "table7", "table9",
        ):
            assert artifact in keys
        assert "table3+fig7a" in keys
        assert "table5+fig7b" in keys
        assert "table8+fig8" in keys

    def test_selection_by_partial_name(self):
        results = run_experiments(["fig4"], scale="smoke")
        assert "fig4" in results

    def test_selection_resolves_combined_ids(self):
        results = run_experiments(["fig7a"], scale="smoke")
        assert "table3+fig7a" in results

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], scale="smoke")

    def test_context_experiments_subset_of_registry(self):
        from repro.experiments.runner import CONTEXT_EXPERIMENTS

        assert CONTEXT_EXPERIMENTS <= set(EXPERIMENTS)


class TestParallelRunner:
    """--jobs runs experiments in worker processes with identical results."""

    @pytest.fixture()
    def stub_registry(self, monkeypatch):
        stubs = {
            "stub-alpha": _stub_alpha,
            "stub-beta": _stub_beta,
            "stub-gamma": _stub_gamma,
        }
        monkeypatch.setattr(
            "repro.experiments.runner.EXPERIMENTS", stubs
        )
        return stubs

    def test_parallel_matches_serial(self, stub_registry):
        serial = run_experiments(None, scale="smoke", jobs=1)
        parallel = run_experiments(
            None, scale="smoke", jobs=2, pretrain_context=False
        )
        assert list(serial) == list(parallel) == list(stub_registry)
        assert [r.value for r in serial.values()] == [
            r.value for r in parallel.values()
        ]

    def test_parallel_results_in_selection_order(self, stub_registry):
        results = run_experiments(
            ["stub-gamma", "stub-alpha"], scale="smoke", jobs=2,
            pretrain_context=False,
        )
        # Output ordering follows the (deterministic) selection order,
        # never the workers' completion order.
        assert list(results) == ["stub-gamma", "stub-alpha"]

    def test_single_selection_runs_serially(self, stub_registry):
        results = run_experiments(["stub-beta"], scale="smoke", jobs=4)
        assert [r.value for r in results.values()] == [("beta", "smoke")]

    def test_cli_rejects_bad_jobs(self, stub_registry, capsys):
        with pytest.raises(SystemExit):
            main(["--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_cli_runs_with_jobs_flag(self, stub_registry, capsys):
        assert main(["--only", "stub-alpha", "--scale", "smoke", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "stub-alpha" in out and "('alpha', 'smoke')" in out


class TestAliases:
    def test_fig7a_alias_matches_table3(self):
        result = fig7_fig8_aliases.run_fig7a(scale="smoke")
        assert result.fig7a_low and result.fig7a_high

    def test_fig7b_alias_matches_table5(self):
        result = fig7_fig8_aliases.run_fig7b(scale="smoke")
        assert ("yala", "low") in result.fig7b

    def test_fig8_alias_matches_table8(self):
        result = fig7_fig8_aliases.run_fig8(scale="smoke")
        assert set(result.fig8) == {"random", "adaptive"}
