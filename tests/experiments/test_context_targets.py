"""Multi-target experiment context: laziness, caching, and the Table 9
bit-identity pin against the pre-refactor standalone training path."""

from __future__ import annotations

import pytest

from repro.core.predictor import YalaPredictor
from repro.core.slomo import SlomoPredictor
from repro.errors import ConfigurationError
from repro.experiments import table9_pensando
from repro.experiments.batch import score_standalone, summarize_accuracy
from repro.experiments.common import EXPERIMENT_SEED, get_scale
from repro.experiments.context import get_context
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import DEFAULT_TARGET, pensando_spec
from repro.profiling.collector import ProfilingCollector
from repro.rng import derive_seed

SCALE = "smoke"


class TestMultiTargetContext:
    def test_targets_are_lazy_and_cached(self):
        context = get_context(SCALE)
        target = context.target("pensando")
        assert context.target("pensando") is target
        assert target.nic.spec.name == "pensando"
        assert "pensando" in context.built_targets

    def test_unknown_target_rejected(self):
        context = get_context(SCALE)
        with pytest.raises(ConfigurationError):
            context.target("connectx")

    def test_default_shorthand_delegates(self):
        context = get_context(SCALE)
        default = context.target(DEFAULT_TARGET)
        assert context.nic is default.nic
        assert context.yala is default.yala
        assert default.nic.spec.name == DEFAULT_TARGET

    def test_per_target_seeds_differ(self):
        context = get_context(SCALE)
        pensando = context.target("pensando")
        assert pensando.nic._seed == derive_seed(EXPERIMENT_SEED, "pensando")

    def test_target_slomo_cached(self):
        context = get_context(SCALE)
        target = context.target("pensando")
        first = target.slomo_for(
            "firewall", seed=derive_seed(EXPERIMENT_SEED, "t9-slomo")
        )
        assert target.slomo_for("firewall") is first
        # Re-requesting the same explicit stream is fine...
        assert (
            target.slomo_for(
                "firewall", seed=derive_seed(EXPERIMENT_SEED, "t9-slomo")
            )
            is first
        )

    def test_conflicting_explicit_seed_rejected(self):
        """A pinned seed stream must never be silently dropped: asking
        for a different explicit seed after training raises."""
        context = get_context(SCALE)
        target = context.target("pensando")
        target.slomo_for(
            "firewall", seed=derive_seed(EXPERIMENT_SEED, "t9-slomo")
        )
        target.yala_for(
            "firewall", seed=derive_seed(EXPERIMENT_SEED, "t9-yala")
        )
        with pytest.raises(ConfigurationError):
            target.slomo_for("firewall", seed=123456)
        with pytest.raises(ConfigurationError):
            target.yala_for("firewall", seed=123456)


class TestTable9SharedContextPin:
    def test_table9_bit_identical_to_pre_refactor_rendering(self):
        """The shared-context Table 9 must reproduce the pre-refactor
        standalone training path to the byte.

        The reference arm below *is* the old ``run()``: a private
        Pensando simulator/collector, predictors trained with the
        historical ``t9-*`` seed streams, cases built on that collector.
        """
        resolved = get_scale(SCALE)
        seed = EXPERIMENT_SEED

        # --- pre-refactor standalone path, replicated verbatim -------
        nic = SmartNic(pensando_spec(), seed=derive_seed(seed, "pensando"))
        collector = ProfilingCollector(nic)
        firewall = make_nf("firewall")
        yala = YalaPredictor(
            firewall, collector, seed=derive_seed(seed, "t9-yala")
        )
        yala.train(quota=resolved.quota)
        slomo = SlomoPredictor("firewall", seed=derive_seed(seed, "t9-slomo"))
        slomo.train(collector, firewall, n_samples=resolved.slomo_samples)
        cases = table9_pensando.build_cases(collector, resolved, seed)
        summary = summarize_accuracy(
            score_standalone(cases, yala=yala, slomo=slomo)
        )
        legacy = table9_pensando.Table9Result(
            slomo_mape=summary.slomo_mape,
            slomo_acc5=summary.slomo_acc5,
            slomo_acc10=summary.slomo_acc10,
            yala_mape=summary.yala_mape,
            yala_acc5=summary.yala_acc5,
            yala_acc10=summary.yala_acc10,
        ).render()

        # --- shared multi-target context path -------------------------
        shared = table9_pensando.run(scale=SCALE).render()
        assert shared == legacy

    def test_secondary_target_does_not_build_default(self):
        """Touching the Pensando target must not force the (expensive)
        BlueField-2 bulk training — targets build independently."""
        from repro.experiments.context import ExperimentContext

        context = ExperimentContext(scale=get_scale(SCALE))
        context.target("pensando")
        assert context.built_targets == ("pensando",)
        assert context.target("pensando").yala.trained_names == []

    def test_warm_context_pretrains_what_run_uses(self):
        context = get_context(SCALE)
        table9_pensando.warm_context(context)
        target = context.target("pensando")
        assert "firewall" in target.yala.trained_names
        assert "firewall" in target.slomo
