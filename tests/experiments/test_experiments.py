"""Smoke-scale runs of every experiment, asserting the paper's *shape*
claims (who wins, monotonicity, crossovers) rather than absolute values.

All experiments share one smoke-scale trained context, so the cost of
training predictors is paid once for the whole module.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_contention_drop,
    fig2_single_resource,
    fig3_traffic_motivation,
    fig4_regex_equilibrium,
    fig5_execution_patterns,
    fig6_traffic_attributes,
    table2_overall_accuracy,
    table3_multi_resource,
    table4_composition,
    table5_traffic,
    table6_scheduling,
    table7_diagnosis,
    table8_profiling,
    table9_pensando,
)
from repro.experiments.common import (
    SCALES,
    evaluation_traffic_profiles,
    get_scale,
    render_table,
)

SCALE = "smoke"


class TestCommon:
    def test_scales_registered(self):
        assert set(SCALES) == {"smoke", "default", "full"}

    def test_get_scale_passthrough(self):
        assert get_scale(SCALES["smoke"]) is SCALES["smoke"]

    def test_get_scale_unknown(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_scale("gigantic")

    def test_evaluation_profiles_start_with_default(self):
        profiles = evaluation_traffic_profiles(3)
        assert profiles[0].flow_count == 16_000
        assert len(profiles) == 3

    def test_evaluation_profiles_extend_beyond_presets(self):
        assert len(evaluation_traffic_profiles(12)) == 12

    def test_render_table_contains_cells(self):
        text = render_table(["a", "b"], [["1", "2"]], title="T")
        assert "T" in text and "1" in text and "2" in text


class TestFig1:
    def test_drop_statistics_shape(self):
        result = fig1_contention_drop.run(scale=SCALE)
        assert len(result.drops) == 9
        for name in result.drops:
            median, p95, p99 = result.percentiles(name)
            assert 0.0 <= median <= p95 <= p99 <= 100.0
        assert result.render()

    def test_regex_nfs_suffer_most_at_tail(self):
        result = fig1_contention_drop.run(scale=SCALE)
        regex_p95 = max(result.percentiles(n)[1] for n in ("nids", "flowmonitor"))
        light_p95 = result.percentiles("acl")[1]
        assert regex_p95 > light_p95


class TestFig4:
    def test_equilibrium_properties(self):
        result = fig4_regex_equilibrium.run(scale=SCALE)
        for mtbr, series in result.nf_series.items():
            # Monotone decline to a plateau.
            assert series[0] > series[-1]
            diffs = np.diff(series)
            assert (diffs <= 1e-6).all()
            # Equilibrium: both workloads settle at the same rate.
            assert result.bench_series[mtbr][-1] == pytest.approx(
                series[-1], rel=0.02
            )

    def test_equilibrium_decreases_with_mtbr(self):
        result = fig4_regex_equilibrium.run(scale=SCALE)
        eq = [result.equilibrium(m) for m in sorted(result.nf_series)]
        assert eq == sorted(eq, reverse=True)
        assert result.render()


class TestFig5:
    def test_pipeline_flat_under_low_car_high_regex(self):
        result = fig5_execution_patterns.run(scale=SCALE)
        heavy = result.pipeline[2600.0]
        # At low CAR the pipeline NF is regex-bound: flat in CAR.
        assert heavy[0] == pytest.approx(heavy[1], rel=0.03)

    def test_rtc_monotone_in_both_dimensions(self):
        result = fig5_execution_patterns.run(scale=SCALE)
        for series in result.run_to_completion.values():
            assert (np.diff(series) <= 1e-6).all()
        at_first_car = [
            result.run_to_completion[m][0]
            for m in sorted(result.run_to_completion)
        ]
        assert (np.diff(at_first_car) <= 1e-6).all()
        assert result.render()


class TestFig6:
    def test_flow_count_knee_and_flattening(self):
        result = fig6_traffic_attributes.run(scale=SCALE)
        heavy = result.by_wss[10.0]
        assert heavy[0] > heavy[-1]  # drops with flows
        light = result.by_wss[0.5]
        light_drop = 1.0 - light[-1] / light[0]
        heavy_drop = 1.0 - heavy[-1] / heavy[0]
        # The heavy competitor forces a much deeper decline.
        assert heavy_drop > light_drop
        assert heavy[-1] < light[-1]

    def test_packet_size_insensitivity(self):
        result = fig6_traffic_attributes.run(scale=SCALE)
        rows = np.array(list(result.by_packet_size.values()))
        # All packet sizes collapse onto the same normalised curve.
        assert np.allclose(rows, rows[0], rtol=0.05)
        assert result.render()


class TestFig2And3:
    def test_fig2_single_resource_models_fail(self):
        result = fig2_single_resource.run(scale=SCALE)
        assert result.box("memory")["median"] > 5.0
        assert (result.box("memory")["max"] > 20.0) or (
            result.box("regex")["max"] > 20.0
        )
        assert result.render()

    def test_fig2_composition_pattern_mismatch(self):
        result = fig2_single_resource.run(scale=SCALE)
        # min composition suits the pipeline NF better than sum.
        assert (
            result.composition_mape[("NF2", "min")]
            < result.composition_mape[("NF2", "sum")]
        )

    def test_fig3_traffic_changes_contention_curves(self):
        result = fig3_traffic_motivation.run(scale=SCALE)
        for series in result.series.values():
            assert series[0] >= series[-1]
        # Fixed-profile model: fine on default, poor elsewhere.
        for name in result.default_errors:
            default = np.median(result.default_errors[name])
            other = np.median(result.other_errors[name])
            assert other > default
        assert result.render()


class TestTables:
    def test_table2_yala_beats_slomo(self):
        result = table2_overall_accuracy.run(scale=SCALE)
        assert len(result.rows) == 9
        assert result.mean_yala_mape < result.mean_slomo_mape
        # At smoke scale quotas are small; the full-scale run in
        # EXPERIMENTS.md shows the paper-sized gap.
        assert result.improvement_pct > 10.0
        assert result.mean_yala_mape < 15.0
        assert result.render()

    def test_table3_multi_resource_gap(self):
        result = table3_multi_resource.run(scale=SCALE)
        for row in result.rows:
            assert row.yala_mape < row.slomo_mape
        # Fig 7a: SLOMO degrades with regex contention, Yala stays low.
        slomo_high = np.median(result.fig7a_high["slomo"])
        yala_high = np.median(result.fig7a_high["yala"])
        assert yala_high < slomo_high
        assert result.render()

    def test_table4_yala_composition_best_everywhere(self):
        result = table4_composition.run(scale=SCALE)
        assert len(result.rows) == 4
        for row in result.rows:
            assert row.yala_mape <= row.sum_mape + 1e-9
            assert row.yala_mape <= row.min_mape + 1e-9
        # Each naive composition is strictly beaten somewhere: sum on a
        # pipeline NF, min on a run-to-completion NF (paper Table 4).
        assert any(r.sum_mape > r.yala_mape + 0.5 for r in result.rows)
        assert any(
            r.min_mape > r.yala_mape + 0.5
            for r in result.rows
            if r.pattern == "run_to_completion"
        )
        assert result.render()

    def test_table5_traffic_awareness_wins(self):
        result = table5_traffic.run(scale=SCALE)
        yala = np.mean([r.yala_mape for r in result.rows])
        slomo = np.mean([r.slomo_mape for r in result.rows])
        assert yala < slomo
        # Fig 7b: SLOMO fine at low deviation, poor at high.
        slomo_low = np.median(result.fig7b[("slomo", "low")])
        slomo_high = np.median(result.fig7b[("slomo", "high")])
        assert slomo_high > slomo_low
        assert result.render()

    def test_table6_strategy_ordering(self):
        result = table6_scheduling.run(scale=SCALE)
        results = result.results
        assert results["monopolization"].mean_violation_pct == 0.0
        assert (
            results["monopolization"].mean_wastage_pct
            > results["yala"].mean_wastage_pct
        )
        assert (
            results["yala"].mean_violation_pct
            <= results["slomo"].mean_violation_pct
        )
        assert result.render()

    def test_table7_diagnosis_ordering(self):
        result = table7_diagnosis.run(scale=SCALE)
        outcomes = result.outcomes
        assert outcomes["flowstats"].slomo_pct == 100.0
        assert outcomes["flowstats"].yala_pct == 100.0
        for name in ("flowmonitor", "ipcomp"):
            assert outcomes[name].yala_pct >= outcomes[name].slomo_pct
        assert result.render()

    def test_table8_adaptive_beats_random(self):
        result = table8_profiling.run(scale=SCALE)
        adaptive = np.mean([r.adaptive_mape for r in result.rows])
        random_ = np.mean([r.random_mape for r in result.rows])
        assert adaptive < random_
        for row in result.rows:
            assert row.full_cost > result.quota  # full costs much more
        assert result.render()

    def test_table9_pensando_transfers(self):
        result = table9_pensando.run(scale=SCALE)
        assert result.yala_mape < result.slomo_mape
        assert result.yala_mape < 12.0
        assert result.render()


class TestFleetServing:
    def test_fleet_policy_ordering(self):
        from repro.experiments import fleet_serving
        from repro.fleet.policies import FLEET_POLICY_NAMES

        result = fleet_serving.run(scale=SCALE)
        reports = result.reports
        assert set(reports) == set(FLEET_POLICY_NAMES)
        mono = reports["monopolization"]
        yala = reports["yala"]
        # One service per NIC can never violate an SLA...
        assert mono.violation_rate_pct == 0.0
        # ...and any packing policy wastes at most what isolation does.
        assert yala.mean_wastage_pct <= mono.mean_wastage_pct
        assert reports["greedy"].mean_wastage_pct <= mono.mean_wastage_pct
        # All policies score the same churn schedule.
        epochs = {r.epochs for r in reports.values()}
        assert epochs == {reports["yala"].epochs}
        assert "Fleet" in result.render()

    def test_fleet_experiment_deterministic(self):
        from repro.experiments import fleet_serving

        a = fleet_serving.run(scale=SCALE)
        b = fleet_serving.run(scale=SCALE)
        assert {k: r.to_json() for k, r in a.reports.items()} == {
            k: r.to_json() for k, r in b.reports.items()
        }
