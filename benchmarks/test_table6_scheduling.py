"""Table 6: contention-aware scheduling."""

from repro.experiments import table6_scheduling

from conftest import run_once


def test_table6_scheduling(benchmark, scale):
    result = run_once(benchmark, table6_scheduling.run, scale=scale)
    results = result.results
    assert results["monopolization"].mean_violation_pct == 0.0
    assert (
        results["monopolization"].mean_wastage_pct
        > results["yala"].mean_wastage_pct
    )
    assert (
        results["yala"].mean_violation_pct <= results["slomo"].mean_violation_pct
    )
    print()
    print(result.render())
