"""Ablations of Yala's two design choices (DESIGN.md §5).

1. **Traffic awareness**: the same GBR memory model trained with and
   without the traffic attribute vector, evaluated under memory
   contention with dynamic traffic. Removing the attributes must cost
   accuracy — this isolates §5.1's contribution from the rest of Yala.
2. **Execution-pattern composition**: predictions composed with the
   detected pattern's rule vs. the *wrong* rule, over identical
   per-resource models. Using Eq. 2 on a run-to-completion NF (or Eq. 3
   on a pipeline) must cost accuracy — isolating §4.2's contribution.
"""

import numpy as np

from repro.core.composition import pipeline_throughput, run_to_completion_throughput
from repro.core.memory_model import MemoryContentionModel
from repro.core.predictor import YalaPredictor
from repro.nf.catalog import make_nf
from repro.nf.synthetic import nf1
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.nic.workload import ExecutionPattern
from repro.profiling.adaptive import AdaptiveProfiler
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile

from conftest import run_once


def _traffic_awareness_ablation():
    nic = SmartNic(bluefield2_spec(), seed=404)
    collector = ProfilingCollector(nic)
    nf = make_nf("flowstats")
    report = AdaptiveProfiler(collector, quota=200, seed=404).profile(nf)
    aware = MemoryContentionModel("flowstats", traffic_aware=True, seed=1)
    aware.fit(report.dataset)
    agnostic = MemoryContentionModel("flowstats", traffic_aware=False, seed=1)
    agnostic.fit(report.dataset)

    rng = np.random.default_rng(404)
    errors = {"aware": [], "agnostic": []}
    for _ in range(15):
        traffic = TrafficProfile(int(rng.uniform(1_000, 500_000)), 1500, 600.0)
        level = ContentionLevel(mem_car=float(rng.uniform(30.0, 250.0)))
        truth = collector.profile_one(nf, level, traffic).throughput_mpps
        counters = collector.bench_counters(level)
        for label, model in (("aware", aware), ("agnostic", agnostic)):
            prediction = model.predict(counters, traffic, level.actor_count)
            errors[label].append(abs(prediction - truth) / truth * 100.0)
    return {label: float(np.mean(values)) for label, values in errors.items()}


def _composition_ablation():
    nic = SmartNic(bluefield2_spec(), seed=405)
    collector = ProfilingCollector(nic)
    nf = nf1(ExecutionPattern.RUN_TO_COMPLETION)
    predictor = YalaPredictor(nf, collector, seed=405).train(
        quota=150, detect_pattern=False
    )
    traffic = TrafficProfile()
    solo = collector.solo(nf, traffic).throughput_mpps

    rng = np.random.default_rng(405)
    errors = {"correct_rule": [], "wrong_rule": []}
    for _ in range(10):
        level = ContentionLevel(
            mem_car=float(rng.uniform(60.0, 250.0)),
            regex_rate=float(rng.uniform(0.4, 1.6)),
            regex_mtbr=float(rng.uniform(300.0, 1000.0)),
        )
        truth = collector.profile_one(nf, level, traffic).throughput_mpps
        counters = collector.bench_counters(level)
        per_resource = [
            predictor.memory_model.predict(counters, traffic, level.actor_count)
        ]
        share = predictor._bench_share("regex", level)
        per_resource.append(
            predictor._accelerator_throughput(
                "regex", traffic, [share] if share else [], solo
            )
        )
        correct = run_to_completion_throughput(solo, per_resource)
        wrong = pipeline_throughput(solo, per_resource)
        errors["correct_rule"].append(abs(correct - truth) / truth * 100.0)
        errors["wrong_rule"].append(abs(wrong - truth) / truth * 100.0)
    return {label: float(np.mean(values)) for label, values in errors.items()}


def test_ablation_traffic_awareness(benchmark):
    result = run_once(benchmark, _traffic_awareness_ablation)
    # Dropping traffic attributes from the features must hurt.
    assert result["aware"] < result["agnostic"]
    print(f"\ntraffic-aware MAPE {result['aware']:.1f}% "
          f"vs traffic-agnostic {result['agnostic']:.1f}%")


def test_ablation_pattern_composition(benchmark):
    result = run_once(benchmark, _composition_ablation)
    # Composing with the wrong execution pattern's rule must hurt.
    assert result["correct_rule"] < result["wrong_rule"]
    print(f"\ncorrect composition MAPE {result['correct_rule']:.1f}% "
          f"vs wrong rule {result['wrong_rule']:.1f}%")
