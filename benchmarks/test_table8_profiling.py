"""Table 8 + Figure 8: profiling cost vs accuracy."""

from repro.experiments import table8_profiling

from conftest import run_once


def test_table8_profiling(benchmark, scale):
    result = run_once(benchmark, table8_profiling.run, scale=scale)
    for row in result.rows:
        assert row.full_cost > result.quota
    print()
    print(result.render())
