"""Figure 1: throughput drop under random co-location."""

from repro.experiments import fig1_contention_drop

from conftest import run_once


def test_fig1_tput_drop(benchmark, scale):
    result = run_once(benchmark, fig1_contention_drop.run, scale=scale)
    assert len(result.drops) == 9
    # The paper reports 4.2-62.2% drops at the 95th percentile and
    # 1.9-10.6% at the median across NFs; our tails must overlap that.
    p95_values = [result.percentiles(n)[1] for n in result.drops]
    assert max(p95_values) > 15.0
    medians = [result.percentiles(n)[0] for n in result.drops]
    assert max(medians) < 35.0
    print()
    print(result.render())
