"""Table 1: the NF catalog inventory (instantiation cost + consistency)."""

from repro.nf.catalog import NF_CATALOG, make_nf
from repro.traffic.profile import TrafficProfile

from conftest import run_once


def _build_all():
    return [make_nf(name) for name in NF_CATALOG]


def test_table1_catalog(benchmark):
    nfs = run_once(benchmark, _build_all)
    assert len(nfs) == 12
    traffic = TrafficProfile()
    for nf, descriptor in zip(nfs, NF_CATALOG.values()):
        assert tuple(nf.uses_accelerators(traffic)) == descriptor.accelerators
