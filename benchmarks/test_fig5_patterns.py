"""Figure 5: pipeline vs run-to-completion contention response."""

import numpy as np
import pytest

from repro.experiments import fig5_execution_patterns

from conftest import run_once


def test_fig5_patterns(benchmark, scale):
    result = run_once(benchmark, fig5_execution_patterns.run, scale=scale)
    heavy = result.pipeline[2600.0]
    assert heavy[0] == pytest.approx(heavy[1], rel=0.03)  # flat vs CAR (O1)
    for series in result.run_to_completion.values():
        assert (np.diff(series) <= 1e-6).all()  # monotone (O2)
    print()
    print(result.render())
