"""Perf gates: cross-epoch incremental solving (PR: warm starts,
compile cache, straggler adoption).

Three speedup gates plus one always-run correctness gate:

- **Warm-started fixed points (>= 1.5x)**: a 1,000-NIC Pensando fleet
  under low churn, measured in *steady state* — epoch 0 (the all-cold
  fleet build) runs once untimed and is checkpointed; both arms resume
  from that snapshot and re-score three epochs. Low churn means most
  NICs keep their resident mix between epochs, so the warm arm seeds
  nearly every solve from the previous epoch's fixed point. Pensando's
  16 cores pack 8 residents per NIC: deep mixes are contention-bound,
  which is where cold solves iterate longest and warm seeds pay most.
- **Compilation cache (>= 1.2x)**: a heterogeneous BlueField-2 +
  Pensando batch whose scenarios repeat a small set of (NF, traffic)
  demands many times — the fleet regime, where one epoch re-solves
  thousands of scenarios drawn from a few dozen distinct demands. The
  steady-state cached arm must beat the cache-disabled arm on plan
  construction alone (solves are identical: cached plans are the same
  objects).
- **Straggler adoption (>= 1.0x, i.e. never slower)**: one big padded
  group plus every proper-subsequence small signature riding along as
  adopted masked lanes, against the scalar-fallback arm
  (``pad_small_groups=False``). Adoption amortises the big group's
  sweeps over the stragglers; the gate holds it to at-worst-parity
  with per-scenario scalar solves even when the adopted rows' dummy
  lanes join shared accelerator engines.
- **Correctness (always runs, 1/10 scale)**: ``warm_start=True``
  reports are byte-identical between the serial runtime and a 2-worker
  ``ProcessRuntime`` — the warm cache travels in task payloads, so
  sharding must not perturb a single byte.

All timed arms are serial CPU work, measured with
``time.process_time`` per the suite's CPU-time discipline.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.fleet.churn import ChurnProcess
from repro.fleet.checkpoint import Checkpointer, load_checkpoint
from repro.fleet.cluster import Cluster, ServiceInstance
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import FleetPolicy, PlacementModel
from repro.fleet.runtime import ProcessRuntime
from repro.nf.catalog import make_nf
from repro.nic.batch import (
    clear_compile_cache,
    set_compile_cache_enabled,
    solve_batch,
)
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec, pensando_spec
from repro.obs.recorder import TraceRecorder, use_recorder
from repro.profiling.collector import ProfilingCollector
from repro.traffic.profile import TrafficProfile

#: Required steady-state advantage of warm-started solves over the
#: cold oracle arm on the low-churn fleet (measured ~1.7x).
MIN_WARM_SPEEDUP = 1.5

#: Required steady-state advantage of the compilation cache over
#: rebuilding every scenario plan (measured ~1.4x).
MIN_COMPILE_CACHE_SPEEDUP = 1.2

#: Adoption must never lose to the scalar fallback (measured ~1.25x).
MIN_ADOPTION_SPEEDUP = 1.0

#: Warm-leg fleet: services / Pensando capacity (8) = 1,000 NICs.
WARM_SERVICES = 8_000

#: One untimed build epoch (checkpointed), then this many timed
#: steady-state epochs per arm.
WARM_TIMED_EPOCHS = 3

#: Low churn: ~0.25 arrivals and ~2 departures per epoch across 8,000
#: services, so almost every NIC's mix survives between epochs and the
#: warm cache hits nearly everywhere.
WARM_POOL = ("flowmonitor", "flowstats", "nids", "nat", "acl")

#: Shared fingerprint for the build-epoch snapshot both arms resume.
WARM_FINGERPRINT = {"bench": "incremental-warm"}

#: Compile-cache leg: structurally uniform table NFs — many distinct
#: mixes, few distinct demands, the cache's target regime.
TABLE_NFS = (
    "flowstats", "nat", "acl", "iprouter",
    "flowtracker", "packetfilter", "flowclassifier", "firewall",
)

#: Six repeating traffic variants: scenario demands recur both within
#: one batch and across calls, like fleet epochs under slow traces.
CACHE_TRAFFIC = [
    TrafficProfile(r, 512, 700.0)
    for r in (20_000, 45_000, 80_000, 120_000, 180_000, 240_000)
]

#: Adoption leg: a four-class big mix (each NF is a distinct
#: structural signature on BlueField-2), so every proper subsequence
#: is a *distinct* small signature that embeds into the big group.
ADOPT_BIG = ("flowmonitor", "nat", "nids", "iptunnel")

#: Repeated solve_batch calls per timed adoption arm.
ADOPT_CALLS = 4


class _FillPolicy(FleetPolicy):
    """O(1) sequential fill: top up the newest NIC, then open one.

    Benchmark-local on purpose (same rationale as the sharded-fleet
    gate): placements must cost nothing next to scoring.
    """

    name = "fill"

    def choose_nic(
        self, cluster: Cluster, instance: ServiceInstance, model: PlacementModel
    ) -> int | None:
        if cluster.nics:
            last = cluster.nics[-1]
            if len(last.residents) < last.max_residents:
                return last.nic_id
        return None


# ----------------------------------------------------------- warm leg
def build_warm_engine(
    warm_start: bool,
    services: int = WARM_SERVICES,
    runtime=None,
) -> FleetEngine:
    """A fresh Pensando engine + collector so no arm inherits state."""
    nic = SmartNic(pensando_spec(), seed=0x5EED, noise_std=0.0)
    model = PlacementModel(collector=ProfilingCollector(nic), nic=nic)
    churn = ChurnProcess(
        nf_names=WARM_POOL,
        seed=11,
        arrival_rate=0.25,
        mean_lifetime=4_000.0,
        initial_services=services,
    )
    return FleetEngine(
        _FillPolicy(), churn, model, runtime=runtime, warm_start=warm_start
    )


def _steady_state_snapshot(path: str) -> None:
    """Run the untimed all-cold build epoch once and checkpoint it."""
    build_warm_engine(False).run(
        1, checkpoint=Checkpointer(path, every=1, fingerprint=WARM_FINGERPRINT)
    )


def _timed_resume(path: str, warm_start: bool):
    """CPU seconds + report for the timed epochs of one arm."""
    _, state = load_checkpoint(path, WARM_FINGERPRINT)
    engine = build_warm_engine(warm_start)
    start = time.process_time()
    report = engine.run(1 + WARM_TIMED_EPOCHS, resume=state)
    return time.process_time() - start, report


def test_warm_start_steady_state_speedup(benchmark, tmp_path):
    snap = str(tmp_path / "warm-build.pkl")
    _steady_state_snapshot(snap)
    speedup, cold_s, warm_s = 0.0, 0.0, 0.0
    report = None
    for _ in range(3):  # re-measure up to 3x before failing
        cold_s, cold_report = _timed_resume(snap, False)
        warm_s, report = _timed_resume(snap, True)
        speedup = max(speedup, cold_s / warm_s)
        if speedup >= MIN_WARM_SPEEDUP:
            break
    benchmark.extra_info["warm_start_steady_state_speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert report.metrics[-1].nics_used >= 1_000
    warm_stats = report.telemetry["warm_start"]
    assert warm_stats["enabled"] is True
    assert warm_stats["hits"] > 0
    mean_warm = warm_stats["warm_iterations"] / warm_stats["warm_scenarios"]
    mean_cold = warm_stats["cold_iterations"] / warm_stats["cold_scenarios"]
    print(
        f"\n# warm start: nics={report.metrics[-1].nics_used} "
        f"timed_epochs={WARM_TIMED_EPOCHS} "
        f"iters/scenario warm={mean_warm:.1f} cold={mean_cold:.1f} "
        f"cold={cold_s:.2f}s warm={warm_s:.2f}s speedup={speedup:.2f}x"
    )
    assert mean_warm < mean_cold
    assert speedup >= MIN_WARM_SPEEDUP


def test_warm_report_is_runtime_invariant():
    """Byte-identity of warm reports across runtimes, at 1/10 scale."""
    services = WARM_SERVICES // 10
    serial = build_warm_engine(True, services=services).run(3)
    runtime = ProcessRuntime(jobs=2)
    try:
        sharded = build_warm_engine(
            True, services=services, runtime=runtime
        ).run(3)
    finally:
        runtime.close()
    assert serial.metrics[-1].nics_used >= 100
    assert serial.telemetry["warm_start"]["hits"] > 0
    assert sharded.to_json() == serial.to_json()


# -------------------------------------------------- compile-cache leg
def _cache_scenarios(width: int, rng: np.random.Generator) -> list:
    """6 big shapes x 250 rows + 150 small shapes x 2 rows, cycling
    the six traffic variants: thousands of scenarios, dozens of
    distinct demands."""
    scens = []
    shapes = [tuple(rng.choice(len(TABLE_NFS), size=width)) for _ in range(6)]
    for si, shape in enumerate(shapes):
        for r in range(250):
            t = CACHE_TRAFFIC[(si + r) % len(CACHE_TRAFFIC)]
            scens.append(
                [
                    make_nf(TABLE_NFS[k]).demand(t, instance=f"b{si}.{j}")
                    for j, k in enumerate(shape)
                ]
            )
    for si in range(150):
        w = 1 + int(rng.integers(0, width))
        shape = tuple(rng.choice(len(TABLE_NFS), size=w))
        t = CACHE_TRAFFIC[si % len(CACHE_TRAFFIC)]
        for _ in range(2):
            scens.append(
                [
                    make_nf(TABLE_NFS[k]).demand(t, instance=f"s{si}.{j}")
                    for j, k in enumerate(shape)
                ]
            )
    return scens


def test_compile_cache_steady_state_speedup(benchmark):
    rng = np.random.default_rng(7)
    work = [
        (SmartNic(spec, seed=0x5EED, noise_std=0.0), _cache_scenarios(w, rng))
        for spec, w in ((bluefield2_spec(), 4), (pensando_spec(), 8))
    ]

    def one_pass():
        for nic, scens in work:
            solve_batch(nic, scens, on_error="return")

    speedup, off_s, on_s = 0.0, 0.0, 0.0
    try:
        for _ in range(3):  # re-measure up to 3x before failing
            clear_compile_cache()
            set_compile_cache_enabled(False)
            start = time.process_time()
            one_pass()
            off_s = time.process_time() - start
            set_compile_cache_enabled(True)
            clear_compile_cache()
            one_pass()  # prime: steady state is the cache's contract
            start = time.process_time()
            one_pass()
            on_s = time.process_time() - start
            speedup = max(speedup, off_s / on_s)
            if speedup >= MIN_COMPILE_CACHE_SPEEDUP:
                break
    finally:
        set_compile_cache_enabled(True)
        clear_compile_cache()
    benchmark.extra_info["compile_cache_steady_state_speedup"] = round(
        speedup, 2
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(
        f"\n# compile cache: scenarios={sum(len(s) for _, s in work)} "
        f"off={off_s:.2f}s on={on_s:.2f}s speedup={speedup:.2f}x"
    )
    assert speedup >= MIN_COMPILE_CACHE_SPEEDUP


# ------------------------------------------------------- adoption leg
def _adoption_scenarios() -> tuple[list, int]:
    """48 big rows plus every proper subsequence of the big mix as a
    2-row small signature (light traffic, so adopted rows converge
    inside the big group's iteration envelope)."""
    rng = np.random.default_rng(29)

    def scen(mix, lo, hi):
        traffic = [
            TrafficProfile(int(rng.integers(lo, hi)), 512, 700.0) for _ in mix
        ]
        return [
            make_nf(n).demand(t, instance=f"{n}#{j}")
            for j, (n, t) in enumerate(zip(mix, traffic))
        ]

    scenarios = [scen(ADOPT_BIG, 5_000, 300_000) for _ in range(48)]
    smalls = [
        tuple(ADOPT_BIG[i] for i in combo)
        for w in (1, 2, 3)
        for combo in itertools.combinations(range(len(ADOPT_BIG)), w)
    ]
    for mix in smalls:
        for _ in range(2):
            scenarios.append(scen(mix, 5_000, 60_000))
    return scenarios, 2 * len(smalls)


def test_adoption_never_loses_to_scalar_fallback(benchmark):
    scenarios, expected_adoptions = _adoption_scenarios()
    nic = SmartNic(bluefield2_spec(), seed=11, noise_std=0.0)
    speedup, adopt_s, scalar_s, adoptions = 0.0, 0.0, 0.0, 0
    for _ in range(3):  # re-measure up to 3x before failing
        recorder = TraceRecorder()
        with use_recorder(recorder):
            start = time.process_time()
            for _ in range(ADOPT_CALLS):
                solve_batch(
                    nic, scenarios, on_error="return", pad_small_groups=True
                )
            adopt_s = time.process_time() - start
        adoptions = int(
            recorder.exec_counters.get("batch.adoptions", 0) // ADOPT_CALLS
        )
        start = time.process_time()
        for _ in range(ADOPT_CALLS):
            solve_batch(
                nic, scenarios, on_error="return", pad_small_groups=False
            )
        scalar_s = time.process_time() - start
        speedup = max(speedup, scalar_s / adopt_s)
        if speedup >= MIN_ADOPTION_SPEEDUP:
            break
    benchmark.extra_info["adoption_vs_scalar_speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(
        f"\n# adoption: adoptions/call={adoptions} "
        f"adopt={adopt_s * 1e3 / ADOPT_CALLS:.1f}ms "
        f"scalar={scalar_s * 1e3 / ADOPT_CALLS:.1f}ms "
        f"speedup={speedup:.2f}x"
    )
    assert adoptions == expected_adoptions  # every small sig embedded
    assert speedup >= MIN_ADOPTION_SPEEDUP
