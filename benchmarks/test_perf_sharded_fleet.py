"""Perf gate: process-sharded epoch scoring on a datacenter-scale fleet.

Workload: a **5,000-NIC** BlueField-2 fleet packed to capacity —
20,000 services by epoch 0 — laid out as pods and scored epoch by
epoch. Services draw dynamic traffic traces, so almost every NIC's
resident mix re-solves every epoch, and the NF pool mixes
regex-accelerated NFs (FlowMonitor, NIDS) with table-driven ones: the
expensive-solve regime where scoring dwarfs the engine's serial
bookkeeping, which is exactly what pod sharding is for. Placement uses
a benchmark-local O(1) fill policy (*not* registered — production
policies scan for candidates, which is placement cost, and this gate
measures scoring). The NIC is noiseless so the arms compare solvers,
not the shared seeded-noise hashing.

Two gates:

- **Correctness (always runs, 1/10 scale)**: the ``ProcessRuntime``
  report is byte-identical to the serial oracle arm's — sharding must
  be free. Runs on any machine, single-core included: worker solving
  is the same pure functions.
- **Speedup (>= 4 cores only, full scale)**: with 4 workers the
  sharded epoch loop must be >= 3x faster than serial at >= 5,000
  NICs. Wall-clock (``perf_counter``) — worker-process CPU is
  invisible to ``process_time``, so the suite's CPU-time discipline
  cannot time this arm.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import Cluster, ServiceInstance
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import FleetPolicy, PlacementModel
from repro.fleet.runtime import ProcessRuntime, Runtime, SerialRuntime
from repro.fleet.topology import Topology
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector

#: Required advantage of 4-worker sharded scoring over the serial arm.
MIN_SHARDED_SPEEDUP = 3.0

#: Worker processes in the sharded arm.
JOBS = 4

#: Full-scale fleet: services / NIC capacity (4) = 5,000 NICs.
SERVICES = 20_000

#: Pod layout: the unit of sharding; 16 pods over 4 workers keeps the
#: per-round load balanced when pods finish unevenly.
TOPOLOGY = Topology(pods=16)

#: Epochs per timed run (epoch 0 builds the fleet; epoch 1 re-scores
#: it under evolved traffic).
EPOCHS = 2

#: Two regex-accelerated NFs + three table-driven ones: mixes are
#: expensive to solve, so scoring dominates the epoch loop.
NF_POOL = ("flowmonitor", "flowstats", "nids", "nat", "acl")

#: Correctness-arm pool: cheap structurally uniform table NFs, so the
#: byte-identity check (which is about partitioning and merge order,
#: not solve cost) stays fast enough for tier-1 on any machine.
CORRECTNESS_POOL = ("flowstats", "nat", "acl", "iprouter", "flowtracker")


class _FillPolicy(FleetPolicy):
    """O(1) sequential fill: top up the newest NIC, then open one.

    Benchmark-local on purpose: it exists so 20k placements cost
    nothing next to scoring, not to be a sensible production policy.
    """

    name = "fill"

    def choose_nic(
        self, cluster: Cluster, instance: ServiceInstance, model: PlacementModel
    ) -> int | None:
        if cluster.nics:
            last = cluster.nics[-1]
            if len(last.residents) < last.max_residents:
                return last.nic_id
        return None


def build_engine(
    runtime: Runtime,
    services: int = SERVICES,
    pool: tuple[str, ...] = NF_POOL,
) -> FleetEngine:
    """A fresh engine + collector so no arm inherits warm caches."""
    nic = SmartNic(bluefield2_spec(), seed=0x5EED, noise_std=0.0)
    model = PlacementModel(collector=ProfilingCollector(nic), nic=nic)
    churn = ChurnProcess(
        nf_names=pool,
        seed=11,
        arrival_rate=40.0,
        mean_lifetime=200.0,
        initial_services=services,
    )
    return FleetEngine(
        _FillPolicy(),
        churn,
        model,
        runtime=runtime,
        topology=TOPOLOGY,
    )


def _run_process(
    services: int = SERVICES,
    pool: tuple[str, ...] = NF_POOL,
    jobs: int = JOBS,
):
    runtime = ProcessRuntime(jobs=jobs)
    try:
        return build_engine(runtime, services=services, pool=pool).run(EPOCHS)
    finally:
        runtime.close()


def _wall_time(fn) -> float:
    """One wall-clock measurement (the process arm's work happens in
    children, invisible to ``time.process_time``); the caller's
    re-measure loop provides the repetition."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_sharded_report_matches_serial_oracle():
    """Sharding must be free: byte-identical reports, any core count."""
    services = SERVICES // 10
    serial = build_engine(
        SerialRuntime(), services=services, pool=CORRECTNESS_POOL
    ).run(EPOCHS)
    process = _run_process(services=services, pool=CORRECTNESS_POOL)
    assert serial.metrics[-1].nics_used >= 500
    assert process.to_json() == serial.to_json()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < JOBS,
    reason=f"speedup gate needs >= {JOBS} cores",
)
def test_sharded_scoring_is_3x_faster_with_4_workers(benchmark):
    speedup, serial_time, process_time_s = 0.0, 0.0, 0.0
    for _ in range(3):  # re-measure up to 3x before failing
        serial_time = _wall_time(
            lambda: build_engine(SerialRuntime()).run(EPOCHS)
        )
        process_time_s = _wall_time(_run_process)
        speedup = max(speedup, serial_time / process_time_s)
        if speedup >= MIN_SHARDED_SPEEDUP:
            break
    benchmark.extra_info["sharded_fleet_speedup_4_workers"] = round(speedup, 2)
    report = benchmark.pedantic(_run_process, rounds=1, iterations=1)
    assert report.metrics[-1].nics_used >= 5_000
    assert report.metrics[-1].services >= SERVICES
    print(
        f"\n# sharded fleet: nics={report.metrics[-1].nics_used} "
        f"services={report.metrics[-1].services} "
        f"topology={TOPOLOGY.describe()} jobs={JOBS} "
        f"serial={serial_time:.2f}s process={process_time_s:.2f}s "
        f"speedup={speedup:.2f}x"
    )
    assert speedup >= MIN_SHARDED_SPEEDUP
