"""Microbenchmarks: the continuous-time event engine.

Two gates, both on the contention-blind greedy workload of
``test_perf_fleet`` (no predictor training, so they isolate the
engine):

- **Epoch parity**: under :meth:`EventConfig.epoch_equivalent` the
  event engine schedules the identical work as the epoch engine —
  same probes, same scoring batches — plus queue bookkeeping. The
  byte-identical report must cost at most ``MAX_EVENT_OVERHEAD`` of
  the epoch engine's time: lazy observation scoring may not regress
  the hot path the epoch loop already optimised.

- **Migration-heavy batching**: a shuffle policy migrates a dozen
  services at every probe while timed migrations (1.5 s) keep the
  movers co-resident on two NICs across the next observation, and
  every service runs a dynamic trace, so each probe re-scores
  essentially the whole (contention-inflated) fleet. Batched scoring (one
  :meth:`SmartNic.run_batch` per hardware target per observation)
  must beat the per-scenario loop oracle by ``MIN_EVENT_SPEEDUP`` —
  the regime the event engine's lazy dirty-NIC gathering exists for.

Correctness is asserted before timing (byte-equality for the parity
gate, identical event logs and metrics for the batching gate). Timing
follows the suite conventions: CPU time, min of three runs per arm on
freshly built engines, re-measured up to three times.
"""

from __future__ import annotations

from repro.fleet.churn import ChurnProcess
from repro.fleet.engine import EventEngine, FleetEngine
from repro.fleet.events import EventConfig
from repro.fleet.policies import GreedyPolicy, PlacementModel
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector

#: Max event-engine cost relative to the epoch engine on the same
#: epoch-equivalent workload.
MAX_EVENT_OVERHEAD = 1.25

#: Required batch-over-loop advantage on the migration-heavy workload.
MIN_EVENT_SPEEDUP = 2.0

EPOCHS = 8
MIGRATION_EPOCHS = 6

NF_POOL = ("flowstats", "nat", "acl", "iprouter", "flowtracker")


def _churn(rate: float, initial: int, trace_kinds=None) -> ChurnProcess:
    kwargs = {"trace_kinds": trace_kinds} if trace_kinds else {}
    return ChurnProcess(
        nf_names=NF_POOL,
        seed=11,
        arrival_rate=rate,
        mean_lifetime=30.0,
        initial_services=initial,
        **kwargs,
    )


def _model() -> PlacementModel:
    nic = SmartNic(bluefield2_spec(), seed=0x5EED, noise_std=0.0)
    return PlacementModel(collector=ProfilingCollector(nic), nic=nic)


class ShufflePolicy(GreedyPolicy):
    """Greedy placement plus forced migrations at every probe.

    Purely a benchmark load generator: each probe moves up to
    ``MOVES_PER_PROBE`` services (round-robin over the fleet's NICs),
    and with a non-zero migration duration every mover contends on two
    NICs until it lands — the migration-heavy regime the batching gate
    measures.
    """

    name = "shuffle"

    MOVES_PER_PROBE = 12

    def __init__(self) -> None:
        self._turn = 0

    def on_probe(self, cluster, t, model, drops):
        moved = 0
        for _ in range(self.MOVES_PER_PROBE):
            nics = cluster.nics
            if len(nics) < 2:
                break
            self._turn += 1
            source = nics[self._turn % len(nics)]
            movable = [
                r
                for r in source.residents
                if cluster.is_home(source, r.instance_id)
                and not cluster.is_migrating(r.instance_id)
            ]
            destination = next(
                (
                    nic
                    for nic in nics
                    if nic.nic_id != source.nic_id
                    and len(nic.residents) < nic.max_residents
                ),
                None,
            )
            if not movable or destination is None:
                continue
            cluster.migrate(
                movable[0].instance_id,
                destination.nic_id,
                int(t),
                reason="shuffle",
            )
            moved += 1
        return moved


def build_epoch_engine(score_mode: str = "batch") -> FleetEngine:
    return FleetEngine(
        "greedy", _churn(20.0, 60), _model(), score_mode=score_mode
    )


def build_event_engine(score_mode: str = "batch") -> EventEngine:
    return EventEngine(
        "greedy",
        _churn(20.0, 60),
        _model(),
        score_mode=score_mode,
        config=EventConfig.epoch_equivalent(),
    )


def build_migration_engine(score_mode: str) -> EventEngine:
    # Dynamic traces on every service: each probe re-scores the whole
    # fleet, so the per-observation batches are epoch-sized. Changes are
    # only *observed* on the probe grid; the 1.5 s migrations still
    # land mid-epoch and keep movers co-resident at the next probe.
    return EventEngine(
        ShufflePolicy(),
        _churn(20.0, 60, trace_kinds=("diurnal", "burst", "random_walk")),
        _model(),
        score_mode=score_mode,
        config=EventConfig(
            migration_duration=1.5,
            probe_period=1.0,
            observe_changes=False,
        ),
    )


def test_event_engine_matches_epoch_cost_on_equivalent_workload(
    benchmark, min_time
):
    # Byte-identical first — parity in output before parity in cost.
    epoch_report = build_epoch_engine().run(EPOCHS)
    event_report = build_event_engine().run(EPOCHS)
    assert event_report.fleet.to_json() == epoch_report.to_json()
    assert event_report.fleet.render() == epoch_report.render()

    overhead = float("inf")
    for _ in range(3):
        epoch_time = min_time(lambda: build_epoch_engine().run(EPOCHS))
        event_time = min_time(lambda: build_event_engine().run(EPOCHS))
        overhead = min(overhead, event_time / epoch_time)
        if overhead <= MAX_EVENT_OVERHEAD:
            break
    benchmark.extra_info["event_vs_epoch_overhead"] = round(overhead, 3)
    benchmark.pedantic(
        lambda: build_event_engine().run(EPOCHS), rounds=1, iterations=1
    )
    print(f"\nevent engine cost vs epoch engine: {overhead:.2f}x")
    assert overhead <= MAX_EVENT_OVERHEAD


def test_migration_heavy_batching_beats_loop(benchmark, min_time):
    # Identical trajectories first — the speedup must be free.
    batched = build_migration_engine("batch").run(MIGRATION_EPOCHS)
    looped = build_migration_engine("loop").run(MIGRATION_EPOCHS)
    assert batched.event_log == looped.event_log
    assert batched.observations == looped.observations
    assert batched.fleet.metrics == looped.fleet.metrics
    # The workload must actually exercise timed migrations.
    assert batched.migrations_started >= 3 * MIGRATION_EPOCHS
    assert batched.migrations_completed >= 1

    speedup = 0.0
    for _ in range(3):
        loop_time = min_time(
            lambda: build_migration_engine("loop").run(MIGRATION_EPOCHS)
        )
        batch_time = min_time(
            lambda: build_migration_engine("batch").run(MIGRATION_EPOCHS)
        )
        speedup = max(speedup, loop_time / batch_time)
        if speedup >= MIN_EVENT_SPEEDUP:
            break
    benchmark.extra_info["event_migration_batch_speedup"] = round(speedup, 2)
    benchmark.pedantic(
        lambda: build_migration_engine("batch").run(MIGRATION_EPOCHS),
        rounds=1,
        iterations=1,
    )
    print(f"\nevent-engine migration-heavy batch speedup: {speedup:.2f}x")
    assert speedup >= MIN_EVENT_SPEEDUP
