"""Microbenchmark: the SmartNIC fixed point, batched vs per-scenario.

Workload: a profiling-shaped sweep — one target NF co-run against bench
contention, the shape every profiling consumer pays per sample. A third
of the points probe under the adaptive profiler's reference contention
(CAR 180 / 10 MB, the corner-probe setting of Algorithm 1), the rest
draw heavy random memory + regex pressure; traffic varies per point.
Solved two ways:

- **seed**: ``[nic.run(s) for s in sweep]`` — the scalar damped fixed
  point, one scenario at a time;
- **fast**: ``nic.run_batch(sweep)`` — the vectorized batch engine
  (:mod:`repro.nic.batch`).

Timing follows the conventions of ``test_perf_training.py``: both arms
use ``time.process_time`` (CPU time, immune to co-tenant interference)
with the minimum of three runs per arm, re-measured up to three times so
one scheduler hiccup cannot fail the assertion spuriously. Correctness
is asserted *before* timing: the batch arm must match the seed arm
bit-for-bit — measured throughputs (noise included), counters, stage
reports, bottleneck labels and iteration counts — so the speedup is
free of any numerical change.
"""

from __future__ import annotations

from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.contention import ContentionLevel
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

#: Required advantage of run_batch over the looped scalar solver.
MIN_SIMULATION_SPEEDUP = 3.0

#: Scenarios in the sweep (each: target + two bench workloads).
SWEEP_SIZE = 120

#: The adaptive profiler's reference contention (corner probes).
_REFERENCE = ContentionLevel(mem_car=180.0, mem_wss_mb=10.0)


def build_profiling_sweep(nic: SmartNic) -> list[list]:
    """Profiling-shaped scenario list: target NF + bench contention."""
    rng = make_rng(0xBA7C4)
    bench_cores = nic.spec.num_cores - 2
    sweep = []
    for index in range(SWEEP_SIZE):
        if index % 3 == 0:
            level = _REFERENCE
        else:
            level = ContentionLevel(
                mem_car=float(rng.uniform(150.0, 260.0)),
                mem_wss_mb=float(rng.uniform(6.0, 12.0)),
                regex_rate=float(rng.uniform(0.5, 2.0)),
                regex_mtbr=float(rng.uniform(200.0, 1000.0)),
            )
        traffic = TrafficProfile(
            flow_count=int(rng.integers(1_000, 300_000)),
            packet_size=int(rng.integers(64, 1500)),
            mtbr=float(rng.uniform(0.0, 1100.0)),
        )
        sweep.append(
            [make_nf("flowmonitor").demand(traffic)] + level.benches(bench_cores)
        )
    return sweep


def test_run_batch_matches_loop_and_is_3x_faster(benchmark, min_time):
    nic = SmartNic(bluefield2_spec(), seed=0x5EED)
    sweep = build_profiling_sweep(nic)

    # Bit-identical results first — the speedup must be numerically free.
    looped = [nic.run(scenario) for scenario in sweep]
    batched = nic.run_batch(sweep)
    for loop_result, batch_result in zip(looped, batched):
        assert batch_result.iterations == loop_result.iterations
        assert batch_result.dram_utilisation == loop_result.dram_utilisation
        for name in loop_result.workloads:
            a, b = loop_result[name], batch_result[name]
            assert b.throughput_mpps == a.throughput_mpps
            assert b.true_throughput_mpps == a.true_throughput_mpps
            assert b.counters == a.counters
            assert b.bottleneck == a.bottleneck
            assert b.stages == a.stages

    speedup = 0.0
    for _ in range(3):
        loop_time = min_time(lambda: [nic.run(s) for s in sweep])
        batch_time = min_time(lambda: nic.run_batch(sweep))
        speedup = max(speedup, loop_time / batch_time)
        if speedup >= MIN_SIMULATION_SPEEDUP:
            break
    benchmark.extra_info["run_batch_speedup_vs_seed_loop"] = round(speedup, 2)
    benchmark.pedantic(lambda: nic.run_batch(sweep), rounds=1, iterations=1)
    print(f"\nrun_batch speedup vs seed per-scenario loop: {speedup:.2f}x")
    assert speedup >= MIN_SIMULATION_SPEEDUP
