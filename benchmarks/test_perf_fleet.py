"""Microbenchmark: the fleet epoch loop, batched vs looped scoring.

Workload: a production-scale fleet — ~200 services over ~50 SmartNICs
by the final epoch — driven by the contention-blind greedy policy (no
predictor training, so the benchmark isolates the scoring engine). The
NF pool is the five structurally uniform table-driven NFs (FlowStats,
NAT, ACL, IPRouter, FlowTracker): their workloads share one structural
signature, which is the regime the batch engine's signature grouping
is built for — few NF *types*, many instances, exactly how a
production fleet looks. Solved two ways:

- **loop**: ``score_mode="loop"`` — every solo baseline and co-run mix
  solved with per-scenario scalar :meth:`SmartNic.run` calls (the
  bit-exactness oracle);
- **fast**: ``score_mode="batch"`` — per epoch, one
  :meth:`ProfilingCollector.solo_many` call for the solo baselines and
  one :meth:`SmartNic.run_batch` call for every NIC's resident mix.

The NIC is noiseless so the gate measures the solvers, not the seeded
measurement-noise hashing both arms share. Correctness is asserted
before timing: the batched trajectory — per-epoch metrics and the
migration log — must equal the looped trajectory exactly. Timing
follows the suite conventions: CPU time, min of three runs per arm
(every run builds a fresh collector so neither arm inherits warm
caches), re-measured up to three times.
"""

from __future__ import annotations

import json

from repro.fleet.churn import ChurnProcess
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import PlacementModel
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector

#: Required advantage of the batched epoch loop over the looped twin.
MIN_FLEET_SPEEDUP = 3.0

#: Epochs simulated per run.
EPOCHS = 8

#: The structurally uniform (table-driven, no accelerator) NF pool.
NF_POOL = ("flowstats", "nat", "acl", "iprouter", "flowtracker")


def build_engine(score_mode: str) -> FleetEngine:
    """A fresh engine + collector so no run inherits warm caches."""
    nic = SmartNic(bluefield2_spec(), seed=0x5EED, noise_std=0.0)
    model = PlacementModel(collector=ProfilingCollector(nic), nic=nic)
    churn = ChurnProcess(
        nf_names=NF_POOL,
        seed=11,
        arrival_rate=20.0,
        mean_lifetime=30.0,
        initial_services=60,
    )
    return FleetEngine("greedy", churn, model, score_mode=score_mode)


def test_batched_epochs_match_loop_and_are_3x_faster(benchmark, min_time):
    # Bit-identical trajectories first — the speedup must be free.
    batched = build_engine("batch").run(EPOCHS)
    looped = build_engine("loop").run(EPOCHS)
    assert batched.metrics == looped.metrics
    assert batched.migrations == looped.migrations
    def strip(report):
        payload = json.loads(report.to_json())
        payload.pop("score_mode")
        return payload

    assert strip(batched) == strip(looped)
    assert batched.metrics[-1].services >= 150  # production-scale fleet

    speedup = 0.0
    for _ in range(3):
        loop_time = min_time(lambda: build_engine("loop").run(EPOCHS))
        batch_time = min_time(lambda: build_engine("batch").run(EPOCHS))
        speedup = max(speedup, loop_time / batch_time)
        if speedup >= MIN_FLEET_SPEEDUP:
            break
    benchmark.extra_info["fleet_epoch_speedup_vs_seed_loop"] = round(speedup, 2)
    benchmark.pedantic(
        lambda: build_engine("batch").run(EPOCHS), rounds=1, iterations=1
    )
    print(f"\nfleet batched-epoch speedup vs looped reference: {speedup:.2f}x")
    assert speedup >= MIN_FLEET_SPEEDUP
