"""Table 2: overall accuracy, Yala vs SLOMO."""

from repro.experiments import table2_overall_accuracy

from conftest import run_once


def test_table2_overall(benchmark, scale):
    result = run_once(benchmark, table2_overall_accuracy.run, scale=scale)
    assert len(result.rows) == 9
    assert result.mean_yala_mape < result.mean_slomo_mape
    print()
    print(result.render())
