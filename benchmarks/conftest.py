"""Benchmark-suite fixtures.

Each benchmark regenerates one paper table/figure at the ``smoke`` scale
(single round — these are minutes-long experiments, not microbenchmarks)
and asserts the headline *shape* of the result. The trained-model
context is shared across benchmarks through the experiment harness's
in-process cache, so predictor training cost is paid once.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    """Experiment scale used by the benchmark suite."""
    return "smoke"


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (experiments are heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
