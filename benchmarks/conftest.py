"""Benchmark-suite fixtures.

Each benchmark regenerates one paper table/figure at the ``smoke`` scale
(single round — these are minutes-long experiments, not microbenchmarks)
and asserts the headline *shape* of the result. The trained-model
context is shared across benchmarks through the experiment harness's
in-process cache, so predictor training cost is paid once.
"""

from __future__ import annotations

import time

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    """Experiment scale used by the benchmark suite."""
    return "smoke"


@pytest.fixture(scope="session")
def min_time():
    """Shared timing helper of the perf benchmarks.

    CPU time (immune to co-tenant interference), minimum over
    ``rounds`` runs — one measurement discipline for every perf gate.
    """

    def _min_time(fn, rounds: int = 3) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.process_time()
            fn()
            best = min(best, time.process_time() - start)
        return best

    return _min_time


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (experiments are heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
