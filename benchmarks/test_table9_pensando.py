"""Table 9: generalisation to the Pensando NIC."""

from repro.experiments import table9_pensando

from conftest import run_once


def test_table9_pensando(benchmark, scale):
    result = run_once(benchmark, table9_pensando.run, scale=scale)
    assert result.yala_mape < result.slomo_mape
    print()
    print(result.render())
