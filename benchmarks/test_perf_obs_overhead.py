"""Perf gate: telemetry overhead on the production-scale fleet loop.

Workload: the same ~200-service greedy fleet as ``test_perf_fleet.py``
(five structurally uniform NFs, noiseless NIC, batched scoring), run
three ways:

- **bare**: no recorder argument (the engine binds the module-level
  shared ``NULL_RECORDER``);
- **null**: an explicit :class:`~repro.obs.NullRecorder` — the default
  telemetry path every ordinary run takes;
- **trace**: a full :class:`~repro.obs.TraceRecorder` collecting every
  span, event, counter and wall timing.

Two gates: the null recorder must be provably negligible (≤ 1.05× of
bare — it is a handful of attribute reads on no-op methods), and the
full trace recorder must stay cheap (≤ 1.25×) because everything it
does is append-a-dict. Correctness is asserted before timing: all
three arms must produce byte-identical reports — telemetry never
perturbs results.

Timing follows the suite conventions: CPU time, min of three runs per
arm (fresh engine + collector per run so no arm inherits warm caches),
re-measured up to three times before failing.
"""

from __future__ import annotations

from typing import Optional

from repro.fleet.churn import ChurnProcess
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import PlacementModel
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.obs import NullRecorder, Recorder, TraceRecorder
from repro.profiling.collector import ProfilingCollector

#: Ceiling on the default (null-recorder) path, relative to bare.
MAX_NULL_OVERHEAD = 1.05

#: Ceiling on full trace collection, relative to bare.
MAX_TRACE_OVERHEAD = 1.25

#: Epochs simulated per run.
EPOCHS = 8

#: The structurally uniform (table-driven, no accelerator) NF pool.
NF_POOL = ("flowstats", "nat", "acl", "iprouter", "flowtracker")


def build_engine(recorder: Optional[Recorder]) -> FleetEngine:
    """A fresh engine + collector so no run inherits warm caches."""
    nic = SmartNic(bluefield2_spec(), seed=0x5EED, noise_std=0.0)
    model = PlacementModel(collector=ProfilingCollector(nic), nic=nic)
    churn = ChurnProcess(
        nf_names=NF_POOL,
        seed=11,
        arrival_rate=20.0,
        mean_lifetime=30.0,
        initial_services=60,
    )
    return FleetEngine("greedy", churn, model, recorder=recorder)


def test_recorder_overhead_is_bounded(benchmark, min_time):
    # Byte-identity first — the overhead bound must buy zero drift.
    bare = build_engine(None).run(EPOCHS)
    nulled = build_engine(NullRecorder()).run(EPOCHS)
    trace_rec = TraceRecorder()
    traced = build_engine(trace_rec).run(EPOCHS)
    assert nulled.to_json() == bare.to_json()
    assert traced.to_json() == bare.to_json()
    assert bare.metrics[-1].services >= 150  # production-scale fleet
    assert trace_rec.records and trace_rec.timings  # it actually recorded

    null_ratio = float("inf")
    trace_ratio = float("inf")
    for _ in range(3):
        bare_time = min_time(lambda: build_engine(None).run(EPOCHS))
        null_time = min_time(
            lambda: build_engine(NullRecorder()).run(EPOCHS)
        )
        trace_time = min_time(
            lambda: build_engine(TraceRecorder()).run(EPOCHS)
        )
        null_ratio = min(null_ratio, null_time / bare_time)
        trace_ratio = min(trace_ratio, trace_time / bare_time)
        if (null_ratio <= MAX_NULL_OVERHEAD
                and trace_ratio <= MAX_TRACE_OVERHEAD):
            break
    benchmark.extra_info["null_recorder_overhead"] = round(null_ratio, 3)
    benchmark.extra_info["trace_recorder_overhead"] = round(trace_ratio, 3)
    benchmark.pedantic(
        lambda: build_engine(NullRecorder()).run(EPOCHS),
        rounds=1, iterations=1,
    )
    print(
        f"\ntelemetry overhead vs bare: null {null_ratio:.3f}x "
        f"(<= {MAX_NULL_OVERHEAD}), trace {trace_ratio:.3f}x "
        f"(<= {MAX_TRACE_OVERHEAD})"
    )
    assert null_ratio <= MAX_NULL_OVERHEAD
    assert trace_ratio <= MAX_TRACE_OVERHEAD
