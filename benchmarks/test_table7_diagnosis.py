"""Table 7: bottleneck diagnosis correctness."""

from repro.experiments import table7_diagnosis

from conftest import run_once


def test_table7_diagnosis(benchmark, scale):
    result = run_once(benchmark, table7_diagnosis.run, scale=scale)
    outcomes = result.outcomes
    assert outcomes["flowstats"].slomo_pct == 100.0
    for name in ("flowmonitor", "ipcomp"):
        assert outcomes[name].yala_pct >= outcomes[name].slomo_pct
    print()
    print(result.render())
