"""Perf gate: worker-crash recovery costs bounded time and zero bytes.

Workload: a 500-NIC BlueField-2 fleet (2,000 services) laid out as 8
pods, scored over 2 epochs by a 4-worker :class:`ProcessRuntime` —
while :class:`FaultInjectingRuntime` SIGKILLs pool workers on a seeded
schedule. Placement uses the same benchmark-local O(1) fill policy as
the sharded-fleet gate (this gate measures recovery, not placement).

Two gates:

- **Correctness (always runs)**: the report produced under injected
  worker kills is byte-identical to the serial oracle arm's, and the
  recovery path really fired (``kills > 0``, ``recoveries > 0``).
  Worker deaths may cost time, never bytes.
- **Recovery overhead (>= 4 cores only)**: the killed-worker run
  completes within ``MAX_RECOVERY_OVERHEAD``x of the fault-free
  process run (wall-clock, min-of-3 — worker CPU is invisible to
  ``process_time``). Detect-rebuild-retry must stay cheap: a fresh
  fork-context pool plus re-submitting one batch, not a serial
  re-solve of the whole epoch.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import Cluster, ServiceInstance
from repro.fleet.engine import FleetEngine
from repro.fleet.policies import FleetPolicy, PlacementModel
from repro.fleet.runtime import (
    FaultInjectingRuntime,
    ProcessRuntime,
    Runtime,
    SerialRuntime,
)
from repro.fleet.topology import Topology
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector

#: Allowed wall-clock ratio: killed-worker run vs fault-free run.
MAX_RECOVERY_OVERHEAD = 1.3

JOBS = 4

#: services / NIC capacity (4) = 500 NICs.
SERVICES = 2_000

TOPOLOGY = Topology(pods=8)

EPOCHS = 2

#: Cheap, structurally uniform table NFs: the gate is about recovery
#: machinery, so per-scenario solve cost stays small.
NF_POOL = ("flowstats", "nat", "acl", "iprouter", "flowtracker")


class _FillPolicy(FleetPolicy):
    """O(1) sequential fill (benchmark-local; placement is not what
    this gate measures)."""

    name = "fill"

    def choose_nic(
        self, cluster: Cluster, instance: ServiceInstance, model: PlacementModel
    ) -> int | None:
        if cluster.nics:
            last = cluster.nics[-1]
            if len(last.residents) < last.max_residents:
                return last.nic_id
        return None


def build_engine(runtime: Runtime) -> FleetEngine:
    """A fresh engine + collector so no arm inherits warm caches."""
    nic = SmartNic(bluefield2_spec(), seed=0x5EED, noise_std=0.0)
    model = PlacementModel(collector=ProfilingCollector(nic), nic=nic)
    churn = ChurnProcess(
        nf_names=NF_POOL,
        seed=11,
        arrival_rate=40.0,
        mean_lifetime=200.0,
        initial_services=SERVICES,
    )
    return FleetEngine(
        _FillPolicy(),
        churn,
        model,
        runtime=runtime,
        topology=TOPOLOGY,
    )


def _run_with(runtime: ProcessRuntime):
    try:
        return build_engine(runtime).run(EPOCHS)
    finally:
        runtime.close()


def _faulty_runtime() -> FaultInjectingRuntime:
    return FaultInjectingRuntime(
        jobs=JOBS,
        kill_every=2,
        kill_seed=7,
        max_kills=2,
        task_timeout=120.0,
        retry_backoff=0.01,
    )


def _wall_time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_killed_workers_reproduce_serial_bytes():
    """Recovery must be invisible in the output: byte-identical to the
    serial oracle, with the kill/recovery path demonstrably taken."""
    serial = build_engine(SerialRuntime()).run(EPOCHS)
    runtime = _faulty_runtime()
    report = _run_with(runtime)
    assert runtime.kills > 0, "fault injector never fired"
    assert runtime.recoveries > 0, "recovery path never exercised"
    assert serial.metrics[-1].nics_used >= 500
    assert report.to_json() == serial.to_json()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < JOBS,
    reason=f"recovery-overhead gate needs >= {JOBS} cores",
)
def test_recovery_overhead_is_bounded(benchmark):
    overhead, clean_time, faulty_time = float("inf"), 0.0, 0.0
    for _ in range(3):  # re-measure up to 3x before failing
        clean_time = _wall_time(
            lambda: _run_with(ProcessRuntime(jobs=JOBS))
        )
        faulty_time = _wall_time(lambda: _run_with(_faulty_runtime()))
        overhead = min(overhead, faulty_time / clean_time)
        if overhead <= MAX_RECOVERY_OVERHEAD:
            break
    benchmark.extra_info["fault_recovery_overhead"] = round(overhead, 2)
    runtime = _faulty_runtime()
    report = benchmark.pedantic(
        lambda: _run_with(runtime), rounds=1, iterations=1
    )
    assert report.metrics[-1].nics_used >= 500
    print(
        f"\n# fault recovery: nics={report.metrics[-1].nics_used} "
        f"services={report.metrics[-1].services} jobs={JOBS} "
        f"kills={runtime.kills} recoveries={runtime.recoveries} "
        f"clean={clean_time:.2f}s faulty={faulty_time:.2f}s "
        f"overhead={overhead:.2f}x"
    )
    assert overhead <= MAX_RECOVERY_OVERHEAD
