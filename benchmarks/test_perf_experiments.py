"""Macrobenchmark: the Table 2 evaluation loop, batched vs per-case.

Workload: the real Table 2 case list at the ``smoke`` scale — every
evaluation NF co-located with sampled competitor mixes under several
traffic profiles, ground truth already measured — scored two ways:

- **seed**: :func:`score_cases_looped`, the per-case
  ``yala.predict`` / ``slomo.predict`` loop the seed experiments ran;
- **fast**: :func:`score_cases`, the batch engine the experiments now
  use (one memory-model GBR batch per predictor, one SLOMO batch per
  target NF; only the cheap accelerator fixed point stays per-case).

Timing follows the conventions of ``test_perf_training.py``: both arms
use ``time.process_time`` (CPU time, immune to co-tenant interference)
with the minimum of three runs per arm, re-measured up to three times so
one scheduler hiccup cannot fail the assertion spuriously. Correctness
is asserted *before* timing: the batch arm must match the seed arm
bit-for-bit — the speedup is free of any numerical change.
"""

from __future__ import annotations

from repro.experiments import table2_overall_accuracy
from repro.experiments.batch import score_cases, score_cases_looped
from repro.experiments.context import get_context

#: Required end-to-end advantage of batched scoring over the seed loop.
MIN_EVAL_SPEEDUP = 2.0


def test_table2_batch_scoring_matches_loop_and_is_2x_faster(
    benchmark, scale, min_time
):
    context = get_context(scale)
    cases = table2_overall_accuracy.build_cases(context, scale)
    assert cases

    # Bit-identical predictions first (also warms every collector
    # cache, so both timed arms measure pure scoring cost).
    looped = score_cases_looped(context, cases)
    batched = score_cases(context, cases)
    assert [(s.yala, s.slomo) for s in batched] == [
        (s.yala, s.slomo) for s in looped
    ]

    speedup = 0.0
    for _ in range(3):
        loop_time = min_time(lambda: score_cases_looped(context, cases))
        batch_time = min_time(lambda: score_cases(context, cases))
        speedup = max(speedup, loop_time / batch_time)
        if speedup >= MIN_EVAL_SPEEDUP:
            break
    benchmark.extra_info["table2_eval_speedup_vs_seed_loop"] = round(speedup, 2)
    benchmark.pedantic(
        lambda: score_cases(context, cases), rounds=1, iterations=1
    )
    print(f"\ntable2 evaluation speedup vs seed per-case loop: {speedup:.2f}x")
    assert speedup >= MIN_EVAL_SPEEDUP
