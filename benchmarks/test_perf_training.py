"""Microbenchmark: the ML training/prediction hot path vs the seed.

Workload: the Table 2 memory-model shape — a 400-sample x 11-feature
profiling matrix (counter-style features quantized to a small number of
levels, as NIC counters are in practice) fitted with 300 boosting
stages of depth-3 trees.

Two arms fit the *same* model:

- **seed**: the original implementation, reconstructed exactly via
  ``split_algorithm="reference"`` (per-node, per-feature argsort split
  search) and ``reuse_leaf_cache=False`` (per-stage re-traversal of the
  freshly grown tree);
- **fast**: the histogram-binned finder (level-batched bincount split
  search over pre-bucketed features) with leaf-cache residual updates.

How the numbers are collected: both arms are timed with
``time.process_time`` (CPU time — immune to co-tenant interference) and
the minimum of three runs is kept per arm; the fast arm is additionally
recorded through pytest-benchmark so the speedup stays visible in the
bench trajectory. Predictions must match the seed bit-for-bit — the
speedup is free of any numerical change.
"""

from __future__ import annotations

import numpy as np

from repro.ml.gbr import GradientBoostingRegressor

#: The Table 2 memory-model fit shape (quota samples x feature width).
N_SAMPLES = 400
N_FEATURES = 11  # 7 counters + n_competitors + 3 traffic attributes
N_ESTIMATORS = 300
#: Counter quantization levels of the synthetic profiling matrix.
LEVELS = 8
#: Required fit-time advantage of the new hot path over the seed.
MIN_FIT_SPEEDUP = 5.0
MIN_PREDICT_SPEEDUP = 3.0


def _workload(seed: int = 1234):
    rng = np.random.default_rng(seed)
    features = (
        np.floor(rng.uniform(0.0, 1.0, size=(N_SAMPLES, N_FEATURES)) * LEVELS)
        / LEVELS
    )
    targets = (
        2.0 * features[:, 0]
        + np.sin(4.0 * features[:, 1])
        + 0.2 * rng.normal(size=N_SAMPLES)
    )
    probe = (
        np.floor(rng.uniform(0.0, 1.0, size=(200, N_FEATURES)) * LEVELS) / LEVELS
    )
    return features, targets, probe


def _gbr(**overrides) -> GradientBoostingRegressor:
    config = dict(
        n_estimators=N_ESTIMATORS,
        learning_rate=0.08,
        max_depth=3,
        subsample=1.0,
        min_samples_leaf=2,
        seed=42,
    )
    config.update(overrides)
    return GradientBoostingRegressor(**config)


def test_vectorized_training_matches_seed_and_is_5x_faster(benchmark, min_time):
    features, targets, probe = _workload()

    seed_arm = lambda: _gbr(  # noqa: E731 - the seed implementation
        split_algorithm="reference", reuse_leaf_cache=False
    )
    fast_arm = lambda: _gbr(split_algorithm="histogram")  # noqa: E731

    # Identical predictions at fixed seeds: same rng consumption, same
    # splits, same leaves — bit-for-bit.
    seed_model = seed_arm().fit(features, targets)
    fast_model = fast_arm().fit(features, targets)
    assert np.array_equal(seed_model.predict(probe), fast_model.predict(probe))
    assert seed_model.train_losses == fast_model.train_losses

    # Wall-time comparison; re-measures guard against a scheduler
    # hiccup distorting a single attempt.
    speedup = 0.0
    for _ in range(3):
        seed_time = min_time(lambda: seed_arm().fit(features, targets))
        fast_time = min_time(lambda: fast_arm().fit(features, targets))
        speedup = max(speedup, seed_time / fast_time)
        if speedup >= MIN_FIT_SPEEDUP:
            break
    benchmark.extra_info["fit_speedup_vs_seed"] = round(speedup, 2)
    benchmark.pedantic(
        lambda: fast_arm().fit(features, targets), rounds=1, iterations=1
    )
    print(f"\nfit speedup vs seed implementation: {speedup:.2f}x")
    assert speedup >= MIN_FIT_SPEEDUP


def test_batch_prediction_matches_and_beats_single_rows(benchmark, min_time):
    features, targets, _ = _workload()
    model = _gbr().fit(features, targets)
    rng = np.random.default_rng(9)
    rows = (
        np.floor(rng.uniform(0.0, 1.0, size=(1000, N_FEATURES)) * LEVELS) / LEVELS
    )

    # Correctness before timing, bit-for-bit.
    singles = np.array(
        [model.predict(rows[i : i + 1])[0] for i in range(rows.shape[0])]
    )
    batched = model.predict(rows)
    assert np.array_equal(singles, batched)

    # Same measurement discipline as the fit comparison: min of three
    # runs per arm, re-measured up to three times — the batched arm is
    # fast enough that a single unguarded sample can be dominated by a
    # stray GC pause when earlier benchmark modules leave a large live
    # heap (the shared smoke-scale experiment context).
    def single_arm():
        for i in range(rows.shape[0]):
            model.predict(rows[i : i + 1])

    speedup = 0.0
    for _ in range(3):
        single_time = min_time(single_arm)
        batch_time = min_time(lambda: model.predict(rows))
        speedup = max(speedup, single_time / batch_time)
        if speedup >= MIN_PREDICT_SPEEDUP:
            break
    benchmark.extra_info["batch_predict_speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: model.predict(rows), rounds=1, iterations=1)
    print(f"\nbatch predict speedup vs single-row loop: {speedup:.2f}x")
    assert speedup >= MIN_PREDICT_SPEEDUP
