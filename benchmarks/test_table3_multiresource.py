"""Table 3 + Figure 7(a): multi-resource deep dive."""

import numpy as np

from repro.experiments import table3_multi_resource

from conftest import run_once


def test_table3_multiresource(benchmark, scale):
    result = run_once(benchmark, table3_multi_resource.run, scale=scale)
    for row in result.rows:
        assert row.yala_mape < row.slomo_mape
    assert np.median(result.fig7a_high["yala"]) < np.median(
        result.fig7a_high["slomo"]
    )
    print()
    print(result.render())
