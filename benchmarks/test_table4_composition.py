"""Table 4: composition approaches across execution patterns."""

from repro.experiments import table4_composition

from conftest import run_once


def test_table4_composition(benchmark, scale):
    result = run_once(benchmark, table4_composition.run, scale=scale)
    assert len(result.rows) == 4
    for row in result.rows:
        assert row.yala_mape <= min(row.sum_mape, row.min_mape) + 1e-9
    print()
    print(result.render())
