"""Figure 6: FlowStats throughput vs traffic attributes."""

import numpy as np

from repro.experiments import fig6_traffic_attributes

from conftest import run_once


def test_fig6_flowstats(benchmark, scale):
    result = run_once(benchmark, fig6_traffic_attributes.run, scale=scale)
    heavy = result.by_wss[10.0]
    assert heavy[0] > heavy[-1]
    rows = np.array(list(result.by_packet_size.values()))
    assert np.allclose(rows, rows[0], rtol=0.05)  # packet-size insensitive
    print()
    print(result.render())
