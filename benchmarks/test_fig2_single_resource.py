"""Figure 2: single-resource models under multi-resource contention."""

from repro.experiments import fig2_single_resource

from conftest import run_once


def test_fig2_single_resource(benchmark, scale):
    result = run_once(benchmark, fig2_single_resource.run, scale=scale)
    # Single-resource models show large worst-case errors (paper: ~60%).
    assert result.box("memory")["max"] > 15.0
    # Pattern-mismatched composition hurts (paper Fig 2b).
    assert (
        result.composition_mape[("NF2", "min")]
        < result.composition_mape[("NF2", "sum")]
    )
    print()
    print(result.render())
