"""Figure 4: round-robin equilibrium on the regex accelerator."""

import numpy as np
import pytest

from repro.experiments import fig4_regex_equilibrium

from conftest import run_once


def test_fig4_regex_equilibrium(benchmark, scale):
    result = run_once(benchmark, fig4_regex_equilibrium.run, scale=scale)
    for mtbr, series in result.nf_series.items():
        assert (np.diff(series) <= 1e-6).all()  # linear decline, then flat
        assert result.bench_series[mtbr][-1] == pytest.approx(
            series[-1], rel=0.02
        )  # equilibrium equality
    equilibria = [result.equilibrium(m) for m in sorted(result.nf_series)]
    assert equilibria == sorted(equilibria, reverse=True)  # MTBR-dependent
    print()
    print(result.render())
