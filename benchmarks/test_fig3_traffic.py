"""Figure 3: traffic attributes reshape contention behaviour."""

import numpy as np

from repro.experiments import fig3_traffic_motivation

from conftest import run_once


def test_fig3_traffic(benchmark, scale):
    result = run_once(benchmark, fig3_traffic_motivation.run, scale=scale)
    for series in result.series.values():
        assert series[0] >= series[-1]
    for name in result.default_errors:
        assert np.median(result.other_errors[name]) > np.median(
            result.default_errors[name]
        )
    print()
    print(result.render())
