"""Microbenchmark: padded super-groups on a heterogeneous fleet epoch.

Workload: the scenario lists a mixed-hardware fleet epoch produces — a
BlueField-2 pool and a Pensando pool, each hosting structurally
*diverse* resident mixes (table-driven NFs interleaved with the
regex-offloading NIDS in varying order and count, plus solo residents).
Every signature group holds at most two scenarios, i.e. everything sits
below the batch engine's scalar-fallback threshold: before padded
super-groups this entire epoch solved scenario by scenario on the
scalar path. Solved two ways:

- **scalar fallback**: ``solve_batch(..., pad_small_groups=False)`` —
  the pre-super-group behaviour (every small group loops through
  :meth:`SmartNic.run`, the bit-exactness oracle);
- **padded**: ``solve_batch(..., pad_small_groups=True)`` — small
  groups merge into padded super-groups (subsequence embedding into a
  grown super-signature, masked dummy lanes) and solve as one
  vectorized fixed point per family.

The NICs are noiseless so the gate measures the solvers, not the seeded
measurement-noise hashing both arms share. Correctness is asserted
before timing: the padded results must equal the scalar-fallback arm
exactly (throughputs, counters, stages, iteration counts) on both
hardware targets. Timing follows the suite conventions: CPU time, min
of three runs per arm, re-measured up to three times.
"""

from __future__ import annotations

from repro.nf.catalog import make_nf
from repro.nic.batch import solve_batch
from repro.nic.nic import SmartNic
from repro.nic.spec import get_spec
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

#: Required advantage of padded super-groups over the scalar fallback.
MIN_HETERO_SPEEDUP = 2.0

#: Hardware targets of the mixed fleet.
TARGETS = ("bluefield2", "pensando")

#: Resident mixes as a fleet epoch sees them: A = table-driven NFs
#: (one structural signature), B = NIDS (regex engine user). Order
#: matters to the structural signature, so these 14 mixes span 14
#: signature groups of two scenarios each.
MIXES = (
    ("flowstats", "nat", "nids", "acl"),
    ("flowstats", "nids", "nat", "acl"),
    ("nids", "flowstats", "nat", "acl"),
    ("flowstats", "nat", "acl", "nids"),
    ("flowstats", "nat", "acl", "iprouter"),
    ("flowstats", "nids", "nat"),
    ("flowstats", "nat", "nids"),
    ("nids", "flowstats", "nat"),
    ("flowstats", "nat", "acl"),
    ("flowstats", "nat"),
    ("flowstats", "nids"),
    ("nids", "nat"),
    ("flowstats",),
    ("nids",),
)


def build_scenarios(seed: int) -> list:
    """Two scenarios per mix at distinct seeded traffic points."""
    rng = make_rng(seed)
    scenarios = []
    for mix in MIXES:
        for _ in range(2):
            scenarios.append(
                [
                    make_nf(name).demand(
                        TrafficProfile(
                            int(rng.uniform(5_000, 400_000)), 1500, 600.0
                        ),
                        instance=f"{name}#{j}",
                    )
                    for j, name in enumerate(mix)
                ]
            )
    return scenarios


def solve_fleet(nics: dict, scenarios: list, padded: bool) -> dict:
    """One 'epoch': solve every pool's scenario list on its own NIC."""
    return {
        target: solve_batch(nic, scenarios, pad_small_groups=padded)
        for target, nic in nics.items()
    }


def test_padded_super_groups_match_scalar_and_are_2x_faster(
    benchmark, min_time
):
    nics = {
        target: SmartNic(get_spec(target), seed=0x5EED, noise_std=0.0)
        for target in TARGETS
    }
    scenarios = build_scenarios(42)

    # Bit-identical results first — the speedup must be free.
    padded = solve_fleet(nics, scenarios, padded=True)
    scalar = solve_fleet(nics, scenarios, padded=False)
    for target in TARGETS:
        for i in range(len(scenarios)):
            a, b = scalar[target][i], padded[target][i]
            assert b.iterations == a.iterations, (target, i)
            assert b.dram_utilisation == a.dram_utilisation, (target, i)
            for name in a.workloads:
                assert (
                    b[name].true_throughput_mpps
                    == a[name].true_throughput_mpps
                ), (target, i, name)
                assert b[name].counters == a[name].counters, (target, i, name)
                assert b[name].stages == a[name].stages, (target, i, name)
                assert b[name].bottleneck == a[name].bottleneck, (target, i)

    speedup = 0.0
    for _ in range(3):
        scalar_time = min_time(lambda: solve_fleet(nics, scenarios, False))
        padded_time = min_time(lambda: solve_fleet(nics, scenarios, True))
        speedup = max(speedup, scalar_time / padded_time)
        if speedup >= MIN_HETERO_SPEEDUP:
            break
    benchmark.extra_info["hetero_padded_speedup_vs_scalar_fallback"] = round(
        speedup, 2
    )
    benchmark.pedantic(
        lambda: solve_fleet(nics, scenarios, True), rounds=1, iterations=1
    )
    print(f"\nheterogeneous-fleet padded super-group speedup: {speedup:.2f}x")
    assert speedup >= MIN_HETERO_SPEEDUP
