"""Table 5 + Figure 7(b): traffic-awareness deep dive."""

import numpy as np

from repro.experiments import table5_traffic

from conftest import run_once


def test_table5_traffic(benchmark, scale):
    result = run_once(benchmark, table5_traffic.run, scale=scale)
    yala = np.mean([r.yala_mape for r in result.rows])
    slomo = np.mean([r.slomo_mape for r in result.rows])
    assert yala < slomo
    print()
    print(result.render())
