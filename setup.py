"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so
PEP 517 editable installs cannot build; keeping a ``setup.py`` (and no
``[build-system]`` table) lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
