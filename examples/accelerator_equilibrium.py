"""Scenario: visualising round-robin accelerator sharing (paper Fig. 4).

Co-runs the synthetic regex-NF with regex-bench at increasing bench
request rates and prints ASCII curves of both throughputs: regex-NF
declines linearly, then both settle at the same equilibrium — the
behaviour Yala's white-box queueing model (Eq. 1) is built on.

Run with ``python examples/accelerator_equilibrium.py``.
"""

import numpy as np

from repro.nf.synthetic import regex_bench, regex_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile

SMALL_PACKETS = TrafficProfile(flow_count=1_000, packet_size=86, mtbr=194.0)


def main() -> None:
    nic = SmartNic(bluefield2_spec(), seed=17, noise_std=0.0)
    for mtbr in (194.0, 628.0):
        nf = regex_nf(mtbr=mtbr, payload_bytes=32.0)
        print(f"\nregex-NF at MTBR {mtbr:.0f} matches/MB:")
        print(f"{'bench rate':>11s} {'regex-NF':>9s} {'bench':>9s}")
        for rate in np.linspace(0.001, 36.0, 10):
            bench = regex_bench(float(rate), mtbr=417.0, payload_bytes=32.0)
            result = nic.run([nf.demand(SMALL_PACKETS), bench])
            nf_rate = result.throughput_of("regex-nf")
            bench_rate = result.throughput_of("regex-bench")
            bar = "*" * int(nf_rate) + "." * int(bench_rate)
            print(f"{rate:11.1f} {nf_rate:9.2f} {bench_rate:9.2f}  {bar}")
        eq = result.throughput_of("regex-nf")
        print(f"  -> equilibrium at ~{eq:.1f} Mpps (both clients equal)")


if __name__ == "__main__":
    main()
