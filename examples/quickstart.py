"""Quickstart: train a Yala predictor and predict co-location throughput.

Run with ``python examples/quickstart.py``. Trains Yala for FlowMonitor
on a simulated BlueField-2, then answers the operator question the paper
opens with: *how fast will FlowMonitor run if I co-locate it with NIDS
and FlowStats?* — and checks the answer against ground truth.
"""

from repro.core.predictor import CompetitorSpec, YalaSystem
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile


def main() -> None:
    nic = SmartNic(bluefield2_spec(), seed=7)
    print("Training Yala predictors (offline profiling on the simulated NIC)...")
    system = YalaSystem(nic, seed=7, quota=300)
    system.train(["flowmonitor", "nids", "flowstats"])

    predictor = system.predictor_of("flowmonitor")
    print(f"  detected execution pattern: {predictor.pattern.value}")
    print(
        "  pruned traffic attributes: "
        f"{predictor.profiling_report.pruned_attributes}"
    )

    traffic = TrafficProfile(flow_count=16_000, packet_size=1500, mtbr=600.0)
    competitors = [
        CompetitorSpec.nf("nids", traffic),
        CompetitorSpec.nf("flowstats", traffic),
    ]

    predicted = system.predict("flowmonitor", traffic, competitors)
    solo = system.collector.solo(make_nf("flowmonitor"), traffic).throughput_mpps
    truth = system.collector.co_run_with(
        make_nf("flowmonitor"),
        traffic,
        [(make_nf("nids"), traffic), (make_nf("flowstats"), traffic)],
    ).throughput_mpps

    print()
    print(f"FlowMonitor solo:                      {solo:6.3f} Mpps")
    print(f"Predicted with NIDS + FlowStats:       {predicted:6.3f} Mpps")
    print(f"Measured  with NIDS + FlowStats:       {truth:6.3f} Mpps")
    print(f"Prediction error:                      {abs(predicted - truth) / truth * 100:5.1f} %")


if __name__ == "__main__":
    main()
