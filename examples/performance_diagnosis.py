"""Scenario: diagnosing a shifting performance bottleneck.

The paper's second use case (§7.5.2): FlowMonitor's bottleneck moves
from the memory subsystem to the regex accelerator as the traffic's
match-to-byte ratio grows. Yala's per-resource models localise the
bottleneck without touching the NF; a memory-only model (SLOMO) can
only ever blame memory.

Run with ``python examples/performance_diagnosis.py``.
"""

import numpy as np

from repro.core.predictor import YalaPredictor
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.usecases.diagnosis import BottleneckDiagnoser


def main() -> None:
    nic = SmartNic(bluefield2_spec(), seed=13)
    collector = ProfilingCollector(nic)
    nf = make_nf("flowmonitor")
    print("Training a Yala predictor for FlowMonitor...")
    predictor = YalaPredictor(nf, collector, seed=13).train(quota=300)

    diagnoser = BottleneckDiagnoser(collector, predictor)
    memory_pressure = ContentionLevel(mem_car=240.0, mem_wss_mb=10.0)
    mtbr_values = list(np.linspace(0.0, 1100.0, 9))

    print("Sweeping MTBR with fixed memory contention (CAR 240 Mref/s):\n")
    print(f"{'MTBR':>8s} {'ground truth':>14s} {'Yala answer':>14s} {'SLOMO answer':>14s}")
    outcome = diagnoser.sweep(
        nf, mtbr_values, memory_contention=memory_pressure, regex_rate=0.8
    )
    for mtbr, truth, yala in zip(mtbr_values, outcome.truths, outcome.yala_answers):
        print(f"{mtbr:8.0f} {truth:>14s} {yala:>14s} {'memory':>14s}")
    print()
    print(f"Yala correct:  {outcome.yala_pct:5.1f} %")
    print(f"SLOMO correct: {outcome.slomo_pct:5.1f} %")


if __name__ == "__main__":
    main()
