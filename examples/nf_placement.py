"""Scenario: contention-aware NF placement on a SmartNIC cluster.

The paper's first use case (§7.5.1): NFs arrive one by one with SLAs and
the operator must pack them onto as few SmartNICs as possible without
violating any SLA. Compares the monopolization / greedy / SLOMO / Yala
strategies on one arrival sequence.

Run with ``python examples/nf_placement.py [--nic <target>]`` — any
registered hardware target (``bluefield2``, ``pensando``, ...) works.
"""

import argparse

from repro.core.predictor import YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import DEFAULT_TARGET, available_specs, get_spec
from repro.profiling.sweep import colocation_sweep
from repro.traffic.profile import TrafficProfile
from repro.usecases.scheduling import Scheduler, random_arrivals

NF_POOL = ("flowmonitor", "nids", "flowstats", "nat", "acl")


def pairwise_drop_matrix(nic: SmartNic) -> None:
    """True pairwise co-location drops, solved in two batched calls."""
    traffic = TrafficProfile()
    nfs = {name: make_nf(name) for name in NF_POOL}
    solos = colocation_sweep(nic, [[(nfs[name], traffic)] for name in NF_POOL])
    solo_tput = {
        name: result.throughput_of(f"{name}#0")
        for name, result in zip(NF_POOL, solos)
    }
    pairs = [
        (a, b) for i, a in enumerate(NF_POOL) for b in NF_POOL[i:]
    ]
    # Every pair's ground-truth co-run solves in ONE run_batch call.
    results = colocation_sweep(
        nic, [[(nfs[a], traffic), (nfs[b], traffic)] for a, b in pairs]
    )
    drops = {}
    for (a, b), result in zip(pairs, results):
        drops[(a, b)] = 100.0 * (
            1.0 - result.throughput_of(f"{a}#0") / solo_tput[a]
        )
        if a != b:  # diagonal keeps instance #0's measurement
            drops[(b, a)] = 100.0 * (
                1.0 - result.throughput_of(f"{b}#1") / solo_tput[b]
            )
    print("True pairwise throughput drop % (row NF co-run with column NF):")
    print(f"{'':14s}" + "".join(f"{name:>13s}" for name in NF_POOL))
    for a in NF_POOL:
        cells = "".join(f"{max(drops[(a, b)], 0.0):13.1f}" for b in NF_POOL)
        print(f"{a:14s}{cells}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nic",
        default=DEFAULT_TARGET,
        choices=available_specs(),
        help="hardware target to place onto",
    )
    args = parser.parse_args()
    nic = SmartNic(get_spec(args.nic), seed=21)
    print(f"Hardware target: {args.nic}\n")
    pairwise_drop_matrix(nic)
    print("Training predictors for the NF pool...")
    system = YalaSystem(nic, seed=21, quota=250)
    system.train(list(NF_POOL))
    slomo = {}
    for name in NF_POOL:
        predictor = SlomoPredictor(name, seed=21)
        predictor.train(system.collector, make_nf(name), n_samples=250)
        slomo[name] = predictor

    scheduler = Scheduler(system, slomo_predictors=slomo)
    arrivals = random_arrivals(16, seed=5, nf_names=NF_POOL)
    print(f"Placing {len(arrivals)} arriving NFs (SLA: 5-20% allowed drop)...")
    oracle = scheduler.oracle_nics(arrivals)
    print(f"Oracle packing needs {oracle} NICs.\n")

    print(f"{'strategy':16s} {'NICs':>5s} {'wastage %':>10s} {'violations %':>13s}")
    for strategy in ("monopolization", "greedy", "slomo", "yala"):
        outcome = scheduler.place(arrivals, strategy)
        print(
            f"{strategy:16s} {outcome.nics_used:5d} "
            f"{outcome.wastage_pct(oracle):10.1f} "
            f"{outcome.violation_rate_pct:13.1f}"
        )


if __name__ == "__main__":
    main()
