"""Scenario: contention-aware NF placement on a SmartNIC cluster.

The paper's first use case (§7.5.1): NFs arrive one by one with SLAs and
the operator must pack them onto as few SmartNICs as possible without
violating any SLA. Compares the monopolization / greedy / SLOMO / Yala
strategies on one arrival sequence.

Run with ``python examples/nf_placement.py``.
"""

from repro.core.predictor import YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.usecases.scheduling import Scheduler, random_arrivals

NF_POOL = ("flowmonitor", "nids", "flowstats", "nat", "acl")


def main() -> None:
    nic = SmartNic(bluefield2_spec(), seed=21)
    print("Training predictors for the NF pool...")
    system = YalaSystem(nic, seed=21, quota=250)
    system.train(list(NF_POOL))
    slomo = {}
    for name in NF_POOL:
        predictor = SlomoPredictor(name, seed=21)
        predictor.train(system.collector, make_nf(name), n_samples=250)
        slomo[name] = predictor

    scheduler = Scheduler(system, slomo_predictors=slomo)
    arrivals = random_arrivals(16, seed=5, nf_names=NF_POOL)
    print(f"Placing {len(arrivals)} arriving NFs (SLA: 5-20% allowed drop)...")
    oracle = scheduler.oracle_nics(arrivals)
    print(f"Oracle packing needs {oracle} NICs.\n")

    print(f"{'strategy':16s} {'NICs':>5s} {'wastage %':>10s} {'violations %':>13s}")
    for strategy in ("monopolization", "greedy", "slomo", "yala"):
        outcome = scheduler.place(arrivals, strategy)
        print(
            f"{strategy:16s} {outcome.nics_used:5d} "
            f"{outcome.wastage_pct(oracle):10.1f} "
            f"{outcome.violation_rate_pct:13.1f}"
        )


if __name__ == "__main__":
    main()
