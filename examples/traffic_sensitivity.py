"""Scenario: exploring an NF's traffic sensitivity before deployment.

Uses the simulator + adaptive profiling to answer: which traffic
attributes does my NF care about, and how does its contended throughput
move across them? Mirrors the analysis behind the paper's Figure 6 and
the attribute pruning of Algorithm 1.

Run with ``python examples/traffic_sensitivity.py [--nic <target>]`` —
any registered hardware target (``bluefield2``, ``pensando``, ...)
works.
"""

import argparse

import numpy as np

from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import DEFAULT_TARGET, available_specs, get_spec
from repro.profiling.adaptive import AdaptiveProfiler
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.profiling.sweep import traffic_sweep
from repro.traffic.profile import TrafficProfile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nic",
        default=DEFAULT_TARGET,
        choices=available_specs(),
        help="hardware target to profile on",
    )
    args = parser.parse_args()
    nic = SmartNic(get_spec(args.nic), seed=31)
    print(f"Hardware target: {args.nic}\n")
    collector = ProfilingCollector(nic)

    for name in ("flowstats", "iptunnel", "nids", "acl"):
        nf = make_nf(name)
        report = AdaptiveProfiler(collector, quota=120, seed=31).profile(nf)
        print(
            f"{name:12s} sensitive to: "
            f"{report.kept_attributes or ['(nothing - traffic-insensitive)']}"
            f"   (pruned: {report.pruned_attributes})"
        )

    print()
    print("FlowStats contended throughput (Mpps) across flow counts")
    print("(mem-bench at CAR 140 Mref/s, WSS 10 MB; one batched sweep):")
    flowstats = make_nf("flowstats")
    contention = ContentionLevel(mem_car=140.0, mem_wss_mb=10.0)
    traffics = [
        TrafficProfile(int(flows), 1500, 600.0)
        for flows in np.geomspace(1_000, 500_000, 7)
    ]
    # All seven operating points solve in one SmartNic.run_batch call.
    for sample in traffic_sweep(collector, flowstats, contention, traffics):
        bar = "#" * int(sample.throughput_mpps * 25)
        print(
            f"  {sample.traffic.flow_count:>8,d} flows  "
            f"{sample.throughput_mpps:6.3f}  {bar}"
        )


if __name__ == "__main__":
    main()
