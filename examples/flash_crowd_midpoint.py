"""Scenario: a flash crowd that strikes between two epoch boundaries.

Four services run comfortably within their SLAs. At t = 2.5 — halfway
between two epochs — every service is hit by a flash crowd that
multiplies its flow count sixfold and dies away almost immediately
(geometric decay 1e-3 per second). By the next epoch boundary the surge
is gone.

The time-stepped epoch engine samples traffic only at integer epochs,
so it reports **zero** SLA violations for the whole run: the spike is
quantized away. The continuous-time event engine chains each trace's
change points as :class:`~repro.fleet.events.TrafficChange` events, so
it re-scores the fleet at exactly t = 2.5, catches the violating
services and charges them to the second-granularity violation integral.

Run with ``python examples/flash_crowd_midpoint.py`` (add ``src/`` to
``PYTHONPATH``). The script asserts the contrast it prints, so a clean
exit doubles as a smoke check.
"""

from repro.fleet.churn import ChurnProcess, ServiceRequest
from repro.fleet.engine import EventEngine, FleetEngine
from repro.fleet.events import EventConfig
from repro.fleet.policies import PlacementModel
from repro.fleet.traces import make_trace
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector
from repro.traffic.profile import TrafficProfile

ONSET = 2.5  # mid-epoch: invisible to the integer clock
HORIZON = 5
BASE = TrafficProfile(10_000, 1000, 400.0)
NFS = ("flowstats", "nat", "acl", "flowstats")


class ScriptedChurn(ChurnProcess):
    """A churn process that plays back a fixed cast of services."""

    def __init__(self, requests):
        super().__init__(
            nf_names=("flowstats",),
            seed=1,
            arrival_rate=0.0,
            initial_services=0,
        )
        self._requests = list(requests)

    def arrivals_for(self, epoch):
        return list(self._requests) if epoch == 0 else []


def cast():
    """Four services, each with a flash-crowd trace peaking at ONSET."""
    requests = []
    for index, nf_name in enumerate(NFS):
        trace = make_trace(
            "flash_crowd",
            BASE,
            seed=100 + index,
            surge_factor=6.0,
            decay=1e-3,
            onset_time=ONSET,
        )
        requests.append(
            ServiceRequest(
                instance_id=f"svc-0-{index}",
                nf_name=nf_name,
                sla_drop_fraction=0.12,
                trace=trace,
                arrival_epoch=0,
                departure_epoch=HORIZON + 5,
            )
        )
    return requests


def main() -> None:
    nic = SmartNic(bluefield2_spec(), seed=7)
    model = PlacementModel(collector=ProfilingCollector(nic), nic=nic)

    epoch_report = FleetEngine("greedy", ScriptedChurn(cast()), model).run(
        HORIZON
    )
    epoch_violations = sum(m.sla_violations for m in epoch_report.metrics)
    print(f"Flash crowd at t = {ONSET} (between epochs 2 and 3)\n")
    print(
        "Epoch engine, sampling at t = 0, 1, 2, 3, 4: "
        f"{epoch_violations} SLA violations — the surge decays before "
        "the next boundary, so the integer clock never sees it."
    )

    event_report = EventEngine(
        "greedy", ScriptedChurn(cast()), model, config=EventConfig()
    ).run(HORIZON)
    spike = [o for o in event_report.observations if o.time == ONSET]
    print(
        "Event engine, re-scoring at every change point: "
        f"{event_report.violation_service_seconds:.1f} violation-"
        f"service-seconds, including an observation at t = {ONSET} with "
        f"{spike[0].sla_violations} services over their SLA "
        f"(fleet drop sum {spike[0].drop_sum:.3f})."
    )

    # The contrast this example exists to show — and the smoke check.
    assert epoch_violations == 0, "epoch clock unexpectedly saw the surge"
    assert spike and spike[0].sla_violations > 0, "event engine missed it"
    assert event_report.violation_service_seconds > 0.0
    print("\nThe epoch report is clean; only the event engine saw the spike.")


if __name__ == "__main__":
    main()
